// Tests for src/algo: every construction algorithm is checked against its
// language on multiple graph families, and round counts are checked
// against the complexity the paper assigns to each regime.
#include <gtest/gtest.h>

#include <set>

#include "algo/cole_vishkin.h"
#include "algo/color_reduction.h"
#include "algo/greedy_by_id.h"
#include "algo/luby_mis.h"
#include "algo/moser_tardos.h"
#include "algo/order_invariant.h"
#include "algo/rand_coloring.h"
#include "algo/rand_matching.h"
#include "algo/weak_color_mc.h"
#include "graph/generators.h"
#include "lang/coloring.h"
#include "lang/lll.h"
#include "lang/matching.h"
#include "lang/mis.h"
#include "lang/weak_coloring.h"
#include "util/logstar.h"

namespace lnc::algo {
namespace {

local::Instance ring_instance(graph::NodeId n, std::uint64_t seed = 0) {
  if (seed == 0) {
    return local::make_instance(graph::cycle(n), ident::consecutive(n));
  }
  return local::make_instance(graph::cycle(n),
                              ident::random_permutation(n, seed));
}

int id_bits_for(graph::NodeId n) { return util::floor_log2(n) + 1; }

TEST(ColeVishkin, Produces3ColoringOnRings) {
  for (graph::NodeId n : {4u, 7u, 16u, 33u, 128u}) {
    for (std::uint64_t seed : {0ull, 5ull}) {
      const local::Instance inst = ring_instance(n, seed);
      const local::EngineResult result =
          run_cole_vishkin(inst, id_bits_for(n));
      ASSERT_TRUE(result.completed);
      EXPECT_TRUE(lang::ProperColoring(3).contains(inst, result.output))
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(ColeVishkin, RoundsGrowLikeLogStar) {
  // The iteration budget is a function of the identity bit-length; it must
  // be monotone and tiny even for huge n (the log* signature).
  const int r16 = ColeVishkinFactory::reduction_iterations(4);
  const int r1k = ColeVishkinFactory::reduction_iterations(10);
  const int r1m = ColeVishkinFactory::reduction_iterations(20);
  const int r64 = ColeVishkinFactory::reduction_iterations(64);
  EXPECT_LE(r16, r1k);
  EXPECT_LE(r1k, r1m);
  EXPECT_LE(r1m, r64);
  EXPECT_LE(r64, 6);  // 2^64 identities still need only ~4 iterations
}

TEST(ColeVishkin, ActualRoundsMatchSchedule) {
  const local::Instance inst = ring_instance(64);
  const local::EngineResult result = run_cole_vishkin(inst, 7);
  EXPECT_EQ(result.rounds,
            ColeVishkinFactory::reduction_iterations(7) + 3);
}

TEST(ColorReduction, ReducesPaletteOneColorPerRound) {
  // Start from a proper 6-coloring of a ring given as input.
  const graph::NodeId n = 12;
  local::Instance inst = ring_instance(n);
  inst.input.resize(n);
  // v%4+2 on a ring of 12: colors 2,3,4,5 repeating; adjacent colors
  // differ and the wrap edge (11 -> 0) carries colors 5 vs 2.
  for (graph::NodeId v = 0; v < n; ++v) inst.input[v] = v % 4 + 2;
  ASSERT_TRUE(lang::ProperColoring(6).contains(inst, inst.input));

  const local::EngineResult result = run_color_reduction(inst, 6, 3);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 3);
  EXPECT_TRUE(lang::ProperColoring(3).contains(inst, result.output));
}

TEST(RandColoring, ZeroRoundsAndPaletteRespected) {
  const UniformRandomColoring algo(3);
  EXPECT_EQ(algo.radius(), 0);
  const local::Instance inst = ring_instance(50);
  const rand::PhiloxCoins coins(7, rand::Stream::kConstruction);
  const local::Labeling output = local::run_ball_algorithm(inst, algo, coins);
  for (local::Label c : output) EXPECT_LT(c, 3u);
}

TEST(RandColoring, DeterministicInSeedAndIdentity) {
  const UniformRandomColoring algo(3);
  const local::Instance inst = ring_instance(20);
  const rand::PhiloxCoins coins(9, rand::Stream::kConstruction);
  const local::Labeling a = local::run_ball_algorithm(inst, algo, coins);
  const local::Labeling b = local::run_ball_algorithm(inst, algo, coins);
  EXPECT_EQ(a, b);
  // Coins follow identities: an identity-shifted instance recolors.
  local::Instance shifted = inst;
  shifted.ids = inst.ids.shifted(1000);
  const local::Labeling c = local::run_ball_algorithm(shifted, algo, coins);
  EXPECT_NE(a, c);
}

TEST(Greedy, ColoringIsProperWithSmallPalette) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    const local::Instance inst = local::make_instance(
        graph::random_regular(30, 3, seed),
        ident::random_permutation(30, seed));
    const local::EngineResult result =
        run_engine(inst, GreedyColoringFactory{});
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(lang::ProperColoring(4).contains(inst, result.output));
  }
}

TEST(Greedy, MisIsMaximalIndependent) {
  const local::Instance inst = ring_instance(25, 3);
  const local::EngineResult result = run_engine(inst, GreedyMisFactory{});
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(lang::MaximalIndependentSet{}.contains(inst, result.output));
}

TEST(Greedy, LinearRoundsOnConsecutiveRing) {
  // Consecutive identities chain the greedy schedule: rounds scale ~ n.
  const local::EngineResult small =
      run_engine(ring_instance(16), GreedyColoringFactory{});
  const local::EngineResult large =
      run_engine(ring_instance(64), GreedyColoringFactory{});
  EXPECT_GT(large.rounds, 3 * small.rounds / 2);
  EXPECT_GE(large.rounds, 60);  // ~n rounds
}

TEST(Luby, ComputesMisOnManyFamilies) {
  const rand::PhiloxCoins coins(11, rand::Stream::kConstruction);
  const std::vector<local::Instance> instances = [] {
    std::vector<local::Instance> v;
    v.push_back(ring_instance(40, 2));
    v.push_back(local::make_instance(graph::petersen(),
                                     ident::random_permutation(10, 4)));
    v.push_back(local::make_instance(graph::grid(6, 6),
                                     ident::random_permutation(36, 5)));
    v.push_back(local::make_instance(graph::star(9),
                                     ident::consecutive(9)));
    return v;
  }();
  for (const auto& inst : instances) {
    const local::EngineResult result = run_luby_mis(inst, coins);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(lang::MaximalIndependentSet{}.contains(inst, result.output));
  }
}

TEST(Luby, LogarithmicRoundsOnRings) {
  const rand::PhiloxCoins coins(13, rand::Stream::kConstruction);
  const local::EngineResult result = run_luby_mis(ring_instance(512, 7), coins);
  ASSERT_TRUE(result.completed);
  EXPECT_LE(result.rounds, 64);  // ~2 * c * log2(512) with slack
}

TEST(Matching, MaximalOnRingsAndTrees) {
  const rand::PhiloxCoins coins(17, rand::Stream::kConstruction);
  const lang::MaximalMatching lang;
  for (graph::NodeId n : {8u, 21u}) {
    const local::Instance inst = ring_instance(n, 9);
    const local::EngineResult result = run_rand_matching(inst, coins);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(lang.contains(inst, result.output)) << "ring n=" << n;
  }
  const local::Instance tree = local::make_instance(
      graph::random_tree_bounded(30, 3, 2), ident::random_permutation(30, 6));
  const local::EngineResult result = run_rand_matching(tree, coins);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(lang.contains(tree, result.output));
}

TEST(WeakColorMc, SucceedsWithHighProbabilityOnRings) {
  const lang::WeakColoring lang(2);
  int successes = 0;
  const int trials = 50;
  for (int trial = 0; trial < trials; ++trial) {
    const rand::PhiloxCoins coins(static_cast<std::uint64_t>(trial) + 1,
                                  rand::Stream::kConstruction);
    const local::Instance inst = ring_instance(24, 5);
    const local::EngineResult result = run_weak_color_mc(inst, coins, 8);
    EXPECT_EQ(result.rounds, 9);  // constant, independent of n
    if (lang.contains(inst, result.output)) ++successes;
  }
  EXPECT_GE(successes, 35);  // Monte-Carlo: most trials succeed
}

TEST(MoserTardos, SatisfiesLllSystem) {
  // Q_8 satisfies the symmetric LLL condition; MT must converge fast.
  const local::Instance inst = local::make_instance(
      graph::hypercube(8), ident::random_permutation(256, 8));
  ASSERT_TRUE(lang::LllAvoidance::lll_condition_holds(inst.g));
  const rand::PhiloxCoins coins(19, rand::Stream::kConstruction);
  const MoserTardosResult result = run_moser_tardos(inst, coins);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(lang::LllAvoidance{}.contains(inst, result.assignment));
  EXPECT_LT(result.phases, 100);
}

TEST(MoserTardos, WorksEvenBeyondTheCondition) {
  // On rings the condition fails but resampling still converges (slower).
  const local::Instance inst = ring_instance(32, 4);
  const rand::PhiloxCoins coins(23, rand::Stream::kConstruction);
  const MoserTardosResult result = run_moser_tardos(inst, coins, 100000);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(lang::LllAvoidance{}.contains(inst, result.assignment));
}

TEST(OrderInvariant, PatternIndexIsABijectionOnPermutations) {
  // All 3! = 6 orderings of 3 distinct identities hit distinct indices.
  std::set<std::uint64_t> seen;
  const std::vector<std::vector<ident::Identity>> perms = {
      {1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1}};
  for (const auto& p : perms) seen.insert(pattern_index(p));
  EXPECT_EQ(seen.size(), 6u);
  for (std::uint64_t idx : seen) EXPECT_LT(idx, pattern_count(3));
}

TEST(OrderInvariant, PatternIndexDependsOnlyOnOrder) {
  EXPECT_EQ(pattern_index(std::vector<ident::Identity>{10, 50, 30}),
            pattern_index(std::vector<ident::Identity>{1, 900, 77}));
  EXPECT_NE(pattern_index(std::vector<ident::Identity>{10, 50, 30}),
            pattern_index(std::vector<ident::Identity>{50, 10, 30}));
}

TEST(OrderInvariant, EnumerateTablesCountsAndShapes) {
  const auto tables = enumerate_tables(3, 3, 0, 10);
  EXPECT_EQ(tables.size(), 10u);
  for (const auto& t : tables) {
    EXPECT_EQ(t.size(), 6u);
    for (local::Label c : t) EXPECT_LT(c, 3u);
  }
  // Base-3 counting: table #4 is digits (1, 1, 0, 0, 0, 0).
  EXPECT_EQ(tables[4][0], 1u);
  EXPECT_EQ(tables[4][1], 1u);
  EXPECT_EQ(tables[4][2], 0u);
}

TEST(OrderInvariant, RingWindowRecoversRingOrder) {
  const local::Instance inst = ring_instance(9);
  const graph::BallView ball(inst.g, 4, 1);
  local::View view;
  view.ball = &ball;
  view.instance = &inst;
  const auto window = RankPatternRingAlgorithm::ring_window(view);
  // Identities are index+1, so the window around node 4 is (4, 5, 6).
  EXPECT_EQ(window, (std::vector<ident::Identity>{4, 5, 6}));
}

TEST(ColeVishkin, TinyRingsAndHugeIdentities) {
  // Smallest legal rings.
  for (graph::NodeId n : {3u, 4u, 5u}) {
    const local::Instance inst = ring_instance(n);
    const local::EngineResult result = run_cole_vishkin(inst, 4);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(lang::ProperColoring(3).contains(inst, result.output));
  }
  // Sparse 48-bit identities with the full 64-bit budget: the schedule
  // saturates at 4 iterations and the coloring stays proper.
  const graph::NodeId n = 32;
  local::Instance inst = local::make_instance(
      graph::cycle(n),
      ident::random_sparse(n, 1, std::uint64_t{1} << 48, 9));
  const local::EngineResult result = run_cole_vishkin(inst, 64);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(lang::ProperColoring(3).contains(inst, result.output));
  EXPECT_EQ(result.rounds, ColeVishkinFactory::reduction_iterations(64) + 3);
}

TEST(Luby, StarAndCompleteGraphEdgeCases) {
  const rand::PhiloxCoins coins(5, rand::Stream::kConstruction);
  // Star: MIS is either the center alone or all leaves.
  const local::Instance star = local::make_instance(
      graph::star(12), ident::random_permutation(12, 7));
  const local::EngineResult sr = run_luby_mis(star, coins);
  ASSERT_TRUE(sr.completed);
  EXPECT_TRUE(lang::MaximalIndependentSet{}.contains(star, sr.output));
  // Complete graph: exactly one node joins.
  const local::Instance k6 = local::make_instance(
      graph::complete(6), ident::random_permutation(6, 8));
  const local::EngineResult kr = run_luby_mis(k6, coins);
  std::size_t members = 0;
  for (local::Label x : kr.output) members += x;
  EXPECT_EQ(members, 1u);
}

TEST(Matching, OddRingLeavesExactlyOneUnmatchedRegion) {
  // On an odd ring a perfect matching is impossible; maximality still
  // forbids two adjacent unmatched nodes.
  const rand::PhiloxCoins coins(11, rand::Stream::kConstruction);
  const local::Instance inst = ring_instance(9, 4);
  const local::EngineResult result = run_rand_matching(inst, coins);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(lang::MaximalMatching{}.contains(inst, result.output));
  std::size_t unmatched = 0;
  for (local::Label x : result.output) unmatched += x == 0 ? 1 : 0;
  EXPECT_GE(unmatched, 1u);  // odd ring: at least one node stays single
  EXPECT_EQ(unmatched % 2, 1u);
}

TEST(OrderInvariant, WrapperMakesIdReadersInvariant) {
  // An algorithm that outputs (center identity mod 3): NOT order-invariant.
  class IdMod3 final : public local::BallAlgorithm {
   public:
    std::string name() const override { return "id-mod-3"; }
    int radius() const override { return 1; }
    local::Label compute(const local::View& view) const override {
      return view.identity(0) % 3;
    }
  };
  const IdMod3 raw;
  const OrderInvariantWrapper wrapped(raw);
  const local::Instance a = ring_instance(8);
  local::Instance b = a;
  b.ids = a.ids.shifted(1);  // order-preserving shift
  const local::Labeling raw_a = local::run_ball_algorithm(a, raw);
  const local::Labeling raw_b = local::run_ball_algorithm(b, raw);
  EXPECT_NE(raw_a, raw_b);  // the raw algorithm leaks identity values
  const local::Labeling wrap_a = local::run_ball_algorithm(a, wrapped);
  const local::Labeling wrap_b = local::run_ball_algorithm(b, wrapped);
  EXPECT_EQ(wrap_a, wrap_b);  // the wrapper sees only ranks
}

}  // namespace
}  // namespace lnc::algo
