// Tests for src/decide: LD deciders, the amos golden-ratio decider, the
// f-resilient decider of Corollary 1, the BPLD#node slack decider, the
// far-from-u evaluation device, and guarantee measurement.
#include <gtest/gtest.h>

#include <cmath>

#include "decide/amos_decider.h"
#include "decide/evaluate.h"
#include "decide/guarantee.h"
#include "decide/lcl_decider.h"
#include "decide/resilient_decider.h"
#include "decide/slack_decider.h"
#include "graph/generators.h"
#include "lang/amos.h"
#include "lang/coloring.h"
#include "util/math.h"

namespace lnc::decide {
namespace {

local::Instance ring_instance(graph::NodeId n) {
  return local::make_instance(graph::cycle(n), ident::consecutive(n));
}

TEST(LclDecider, AcceptsExactlyMembers) {
  const lang::ProperColoring lang(3);
  const LclDecider decider(lang);
  const local::Instance inst = ring_instance(6);
  const local::Labeling proper = {0, 1, 0, 1, 0, 1};
  const local::Labeling clash = {0, 0, 1, 0, 1, 2};
  EXPECT_TRUE(evaluate(inst, proper, decider).accepted);
  const DecisionOutcome bad = evaluate(inst, clash, decider);
  EXPECT_FALSE(bad.accepted);
  // The rejecting set is exactly the bad-ball centers.
  EXPECT_EQ(bad.rejecting, lang.bad_ball_centers(inst, clash));
}

TEST(LclDecider, OneSidedNoFalseRejects) {
  // On members, EVERY node accepts — the LD guarantee is one-sided and
  // deterministic (no probability involved).
  const lang::ProperColoring lang(3);
  const LclDecider decider(lang);
  for (graph::NodeId n : {4u, 9u, 12u}) {
    const local::Instance inst = ring_instance(n);
    local::Labeling y(n);
    for (graph::NodeId v = 0; v < n; ++v) y[v] = v % 2;
    if (n % 2 == 1) y[n - 1] = 2;
    ASSERT_TRUE(lang.contains(inst, y));
    EXPECT_TRUE(evaluate(inst, y, decider).accepted);
  }
}

TEST(AmosDecider, DefaultsToGoldenRatio) {
  const AmosDecider decider;
  EXPECT_NEAR(decider.p(), util::golden_ratio_guarantee(), 1e-12);
  EXPECT_NEAR(decider.guarantee(), util::golden_ratio_guarantee(), 1e-12);
}

TEST(AmosDecider, AlwaysAcceptsZeroSelected) {
  const AmosDecider decider;
  const local::Instance inst = ring_instance(8);
  const local::Labeling none(8, 0);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const rand::PhiloxCoins coins(seed, rand::Stream::kDecision);
    EXPECT_TRUE(evaluate(inst, none, decider, coins).accepted);
  }
}

TEST(AmosDecider, MeetsGuaranteeOnBothSides) {
  const AmosDecider decider;
  const local::Instance inst = ring_instance(10);

  // Yes side: one selected node.
  auto yes_sampler = [&](std::uint64_t seed) {
    SampledConfiguration sample{ring_instance(10), local::Labeling(10, 0), {}};
    sample.output[seed % 10] = lang::Amos::kSelected;
    return sample;
  };
  // No side: two selected nodes.
  auto no_sampler = [&](std::uint64_t seed) {
    SampledConfiguration sample{ring_instance(10), local::Labeling(10, 0), {}};
    sample.output[seed % 10] = lang::Amos::kSelected;
    sample.output[(seed % 10 + 5) % 10] = lang::Amos::kSelected;
    return sample;
  };
  GuaranteeOptions options;
  options.trials = 4000;
  const GuaranteeReport report =
      measure_guarantee(decider, yes_sampler, no_sampler, options);
  EXPECT_TRUE(report.meets_bpld_bar());
  // Pr[all accept | 1 selected] = p ~ 0.618.
  EXPECT_NEAR(report.accept_on_yes.p_hat, decider.p(), 0.03);
  // Pr[some reject | 2 selected] = 1 - p^2 ~ 0.618.
  EXPECT_NEAR(report.reject_on_no.p_hat, 1.0 - decider.p() * decider.p(),
              0.03);
}

TEST(ResilientDecider, AdmissibleIntervalMatchesPaper) {
  // (2^{-1/f}, 2^{-1/(f+1)}) — the paper writes it as
  // (e^{-ln2/f}, e^{-ln2/(f+1)}).
  const util::Interval iv = ResilientDecider::admissible_interval(2);
  EXPECT_NEAR(iv.lo, std::exp(-std::log(2.0) / 2.0), 1e-12);
  EXPECT_NEAR(iv.hi, std::exp(-std::log(2.0) / 3.0), 1e-12);
  const double p = ResilientDecider::default_p(2);
  EXPECT_GT(p, iv.lo);
  EXPECT_LT(p, iv.hi);
}

TEST(ResilientDecider, GuaranteeExceedsHalfForAllF) {
  const lang::ProperColoring base(3);
  for (std::size_t f = 1; f <= 10; ++f) {
    const ResilientDecider decider(base, f);
    EXPECT_GT(decider.guarantee(), 0.5) << "f=" << f;
  }
}

TEST(ResilientDecider, AcceptsGoodBallsDeterministically) {
  const lang::ProperColoring base(3);
  const ResilientDecider decider(base, 2);
  const local::Instance inst = ring_instance(6);
  const local::Labeling proper = {0, 1, 0, 1, 0, 1};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const rand::PhiloxCoins coins(seed, rand::Stream::kDecision);
    EXPECT_TRUE(evaluate(inst, proper, decider, coins).accepted);
  }
}

TEST(ResilientDecider, MeetsEqOneBothSides) {
  const lang::ProperColoring base(3);
  const std::size_t f = 2;
  const ResilientDecider decider(base, f);
  const graph::NodeId n = 12;

  // Yes: exactly one monochromatic edge => 2 bad balls <= f. The base
  // pattern has its single clash at (0,1); rotating it keeps the count
  // (rings are vertex-transitive).
  const local::Labeling one_clash = {0, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 2};
  auto rotate = [n](const local::Labeling& base, graph::NodeId r) {
    local::Labeling y(n);
    for (graph::NodeId v = 0; v < n; ++v) y[(v + r) % n] = base[v];
    return y;
  };
  auto yes_sampler = [&](std::uint64_t seed) {
    return SampledConfiguration{
        ring_instance(n),
        rotate(one_clash, static_cast<graph::NodeId>(seed % n)), {}};
  };
  // No: two monochromatic edges => 4 bad balls > f.
  const local::Labeling two_clashes = {0, 0, 1, 0, 1, 2, 0, 0, 1, 0, 1, 2};
  auto no_sampler = [&](std::uint64_t seed) {
    return SampledConfiguration{
        ring_instance(n),
        rotate(two_clashes, static_cast<graph::NodeId>(seed % n)), {}};
  };
  GuaranteeOptions options;
  options.trials = 4000;
  const GuaranteeReport report =
      measure_guarantee(decider, yes_sampler, no_sampler, options);
  EXPECT_TRUE(report.meets_bpld_bar());
  // Theory: accept-on-yes = p^2, reject-on-no = 1 - p^4.
  EXPECT_NEAR(report.accept_on_yes.p_hat, std::pow(decider.p(), 2), 0.03);
  EXPECT_NEAR(report.reject_on_no.p_hat, 1.0 - std::pow(decider.p(), 4),
              0.03);
}

TEST(SlackDecider, RequiresKnowledgeOfN) {
  const lang::ProperColoring base(3);
  const SlackDecider decider(base, 0.25);
  const local::Instance inst = ring_instance(8);
  const local::Labeling y = {0, 0, 1, 0, 1, 0, 1, 2};
  const rand::PhiloxCoins coins(3, rand::Stream::kDecision);
  EvaluateOptions options;
  options.grant_n = true;  // without this the decider traps
  const DecisionOutcome outcome = evaluate(inst, y, decider, coins, options);
  (void)outcome;  // any verdict is fine; the point is it ran with n granted
  EXPECT_GT(decider.p_for(100), decider.p_for(10));
}

TEST(FarFrom, RestrictsVerdictsToDistantNodes) {
  const lang::ProperColoring lang(3);
  const LclDecider decider(lang);
  const graph::NodeId n = 16;
  const local::Instance inst = ring_instance(n);
  // Single clash at the edge (0, 1): bad balls at nodes 0 and 1 only.
  const local::Labeling y = {0, 0, 1, 0, 1, 0, 1, 0,
                             1, 0, 1, 0, 1, 0, 1, 2};
  ASSERT_FALSE(evaluate(inst, y, decider).accepted);

  // Far from node 0 with radius 2: both rejecting nodes are inside the
  // exclusion ball, so the restricted run ACCEPTS.
  EvaluateOptions far_options;
  far_options.far_from = FarFrom{0, 2};
  EXPECT_TRUE(evaluate(inst, y, decider, far_options).accepted);

  // Far from the antipodal node 8: the rejections count again.
  far_options.far_from = FarFrom{8, 2};
  EXPECT_FALSE(evaluate(inst, y, decider, far_options).accepted);
}

TEST(FarFrom, UnreachableNodesAlwaysCount) {
  // On a disconnected configuration, nodes in the other component are at
  // infinite distance from u, hence always outside the exclusion ball.
  const lang::ProperColoring lang(3);
  const LclDecider decider(lang);
  graph::Graph::Builder b(8);
  for (graph::NodeId i = 0; i < 3; ++i) b.add_edge(i, (i + 1) % 4);
  b.add_edge(3, 0);
  for (graph::NodeId i = 4; i < 7; ++i) b.add_edge(i, i + 1);
  b.add_edge(7, 4);
  const local::Instance inst =
      local::make_instance(b.build(), ident::consecutive(8));
  // Clash inside the SECOND component.
  const local::Labeling y = {0, 1, 0, 1, 0, 0, 1, 2};
  EvaluateOptions options;
  options.far_from = FarFrom{0, 3};  // u in the FIRST component
  const DecisionOutcome outcome = evaluate(inst, y, decider, options);
  EXPECT_FALSE(outcome.accepted);  // the far clash still counts
}

TEST(ResilientDecider, RejectsOutOfIntervalP) {
  const lang::ProperColoring base(3);
  EXPECT_DEATH(ResilientDecider(base, 2, 0.5), "p_");
  EXPECT_DEATH(ResilientDecider(base, 2, 0.99), "p_");
}

TEST(Evaluate, ParallelMatchesSequential) {
  const lang::ProperColoring lang(3);
  const LclDecider decider(lang);
  const local::Instance inst = ring_instance(64);
  local::Labeling y(64);
  for (graph::NodeId v = 0; v < 64; ++v) y[v] = v % 3;
  const DecisionOutcome seq = evaluate(inst, y, decider);
  stats::ThreadPool pool(4);
  EvaluateOptions options;
  options.pool = &pool;
  const DecisionOutcome par = evaluate(inst, y, decider, options);
  EXPECT_EQ(seq.accepted, par.accepted);
  EXPECT_EQ(seq.rejecting, par.rejecting);
}

}  // namespace
}  // namespace lnc::decide
