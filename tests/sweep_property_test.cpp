// Property tests for the scenario stack (ISSUE 4 satellite):
//
//  * randomized ScenarioSpecs drawn over the registries — including the
//    fault registry (ISSUE 9) — (seeded, no wall-clock) either compile
//    and run, or fail validation with a non-empty human-readable
//    diagnostic — never crash;
//  * shard-merge identity: for success, value, counter, and faulty
//    workloads, a 2-way and an uneven 3-way shard partition
//    (JSON-round-tripped, as the cross-process workflow does) merge back
//    to the unsharded run BIT FOR BIT, at 1, 2, and 8 worker threads.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "rand/splitmix.h"
#include "scenario/presets.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "stats/threadpool.h"

namespace {

using namespace lnc;
using scenario::ScenarioSpec;

// ------------------------------------------------------ spec generation --

template <typename Entry>
std::vector<std::string> registered_names(
    const scenario::Registry<Entry>& registry) {
  std::vector<std::string> names;
  for (const Entry* entry : registry.all()) names.push_back(entry->name);
  return names;
}

/// Mostly a registered name, occasionally a bogus one — the generator
/// exercises both the compile path and the diagnostic path, weighted so
/// both accumulate a meaningful sample.
std::string pick_name(rand::SplitMix64& rng,
                      const std::vector<std::string>& pool,
                      const char* bogus) {
  if (rng.next_below(10) == 0) return bogus;
  return pool[rng.next_below(pool.size())];
}

template <typename T>
const T& pick(rand::SplitMix64& rng, const std::vector<T>& pool) {
  return pool[rng.next_below(pool.size())];
}

/// One random spec. Sizes and trial counts stay tiny so a valid draw
/// compiles and runs in milliseconds.
ScenarioSpec random_spec(rand::SplitMix64& rng) {
  static const std::vector<std::string> topologies =
      registered_names(scenario::topologies());
  static const std::vector<std::string> languages =
      registered_names(scenario::languages());
  static const std::vector<std::string> constructions =
      registered_names(scenario::constructions());
  static const std::vector<std::string> deciders =
      registered_names(scenario::deciders());
  static const std::vector<std::string> statistics =
      registered_names(scenario::statistics());
  // Shared-namespace keys several components declare, plus a foreign one.
  // ("p" stays out: the resilient decider constrains it to a fault-budget-
  // dependent interval that static range validation cannot express.)
  static const std::vector<std::string> param_keys = {
      "colors", "faults",        "eps",   "degree",    "max-degree",
      "count",  "fixup-rounds",  "radius", "edge-prob", "frobnicate"};

  ScenarioSpec spec;
  spec.name = "prop-" + std::to_string(rng.next());
  spec.topology = pick_name(rng, topologies, "no-such-topology");
  spec.language = pick_name(rng, languages, "no-such-language");
  spec.construction = pick_name(rng, constructions, "no-such-construction");
  spec.decider = pick_name(rng, deciders, "no-such-decider");
  switch (rng.next_below(3)) {
    case 0:
      spec.workload = local::WorkloadKind::kSuccess;
      // Occasionally a statistic on a success workload (must diagnose).
      if (rng.next_below(8) == 0) spec.statistic = pick(rng, statistics);
      break;
    case 1:
      spec.workload = local::WorkloadKind::kValue;
      break;
    default:
      spec.workload = local::WorkloadKind::kCounter;
      break;
  }
  if (spec.workload != local::WorkloadKind::kSuccess) {
    // Value/counter workloads need the exact pseudo-decider; keep a
    // minority of other deciders to exercise that diagnostic.
    if (rng.next_below(4) != 0) spec.decider = "exact";
    // Mostly a real statistic, sometimes bogus, sometimes missing.
    if (rng.next_below(6) != 0) {
      spec.statistic =
          pick_name(rng, statistics, "no-such-statistic");
    }
  }
  const std::size_t param_count = rng.next_below(3);
  for (std::size_t i = 0; i < param_count; ++i) {
    spec.params[pick(rng, param_keys)] =
        static_cast<double>(1 + rng.next_below(4));
  }
  // Half the draws carry a fault block: mostly a registered model,
  // occasionally a bogus name or a parameter the model's schema does not
  // declare / does not accept — both sides of the sixth registry's
  // diagnostics. (crash-round=0 is below its declared minimum, and every
  // key is foreign to some model, so rejections accumulate too.)
  static const std::vector<std::string> faults =
      registered_names(scenario::faults());
  if (rng.next_below(2) == 0) {
    spec.fault = pick_name(rng, faults, "no-such-fault");
    if (rng.next_below(3) == 0) {
      static const std::vector<std::string> fault_keys = {
          "p-loss", "p-crash", "crash-round", "p-churn", "frobnicate"};
      spec.fault_params[pick(rng, fault_keys)] =
          0.05 * static_cast<double>(rng.next_below(4));
    }
  }
  spec.n_grid = {8 + rng.next_below(25)};
  if (rng.next_below(16) == 0) spec.n_grid.clear();  // must diagnose
  spec.trials = 1 + rng.next_below(2);
  spec.base_seed = rng.next();
  spec.success_on_accept = rng.next_below(2) == 0;
  return spec;
}

TEST(SweepProperty, RandomSpecsCompileOrDiagnose) {
  rand::SplitMix64 rng(20260728);  // fixed seed: fully deterministic
  int compiled_count = 0;
  int rejected_count = 0;
  for (int draw = 0; draw < 200; ++draw) {
    const ScenarioSpec spec = random_spec(rng);
    const std::string error = scenario::validate(spec);
    if (!error.empty()) {
      // Every rejection is an actual diagnostic, not a silent failure.
      EXPECT_GT(error.size(), 10u) << "draw " << draw;
      ++rejected_count;
      continue;
    }
    const scenario::CompiledScenario compiled = scenario::compile(spec);
    const scenario::SweepResult result = scenario::run_sweep(compiled);
    ASSERT_EQ(result.rows.size(), spec.n_grid.size()) << "draw " << draw;
    EXPECT_EQ(result.workload, spec.workload);
    for (const scenario::SweepRow& row : result.rows) {
      EXPECT_EQ(row.tally.trials, spec.trials) << "draw " << draw;
      if (spec.workload == local::WorkloadKind::kCounter) {
        EXPECT_EQ(row.tally.counts.size(), 1u) << "draw " << draw;
      }
    }
    ++compiled_count;
  }
  // The generator must exercise both sides substantially.
  EXPECT_GT(compiled_count, 20);
  EXPECT_GT(rejected_count, 20);
}

// ------------------------------------------------------ merge identity --

/// Workload-aware bit-identity assertion between two complete results.
void expect_identical(const scenario::SweepResult& want,
                      const scenario::SweepResult& got,
                      const std::string& context) {
  ASSERT_EQ(want.rows.size(), got.rows.size()) << context;
  EXPECT_EQ(want.workload, got.workload) << context;
  for (std::size_t i = 0; i < want.rows.size(); ++i) {
    const scenario::SweepRow& w = want.rows[i];
    const scenario::SweepRow& g = got.rows[i];
    EXPECT_EQ(w.tally.trials, g.tally.trials) << context;
    EXPECT_EQ(w.tally.successes, g.tally.successes) << context;
    EXPECT_TRUE(w.tally.value_sum == g.tally.value_sum) << context;
    EXPECT_TRUE(w.tally.value_sum_sq == g.tally.value_sum_sq) << context;
    EXPECT_EQ(w.tally.counts, g.tally.counts) << context;
    EXPECT_TRUE(w.tally.telemetry.deterministic_equal(g.tally.telemetry))
        << context;
    switch (want.workload) {
      case local::WorkloadKind::kSuccess: {
        const stats::Estimate a = scenario::row_estimate(w);
        const stats::Estimate b = scenario::row_estimate(g);
        EXPECT_EQ(a.p_hat, b.p_hat) << context;
        EXPECT_EQ(a.ci.lo, b.ci.lo) << context;
        EXPECT_EQ(a.ci.hi, b.ci.hi) << context;
        break;
      }
      case local::WorkloadKind::kValue: {
        const stats::MeanEstimate a = scenario::row_mean(w);
        const stats::MeanEstimate b = scenario::row_mean(g);
        EXPECT_EQ(a.mean, b.mean) << context;
        EXPECT_EQ(a.stddev, b.stddev) << context;
        break;
      }
      case local::WorkloadKind::kCounter:
        break;  // counts compared above
    }
  }
}

/// Runs `shard_count` shards (each JSON-round-tripped) and merges.
scenario::SweepResult sharded_merge(const scenario::CompiledScenario& compiled,
                                    unsigned shard_count,
                                    const stats::ThreadPool* pool) {
  std::vector<scenario::SweepResult> shards;
  for (unsigned s = 0; s < shard_count; ++s) {
    scenario::SweepOptions options;
    options.shard = s;
    options.shard_count = shard_count;
    options.pool = pool;
    std::ostringstream os;
    scenario::write_json(os, scenario::run_sweep(compiled, options));
    std::vector<std::string> warnings;
    shards.push_back(scenario::sweep_from_json(os.str(), &warnings));
    EXPECT_TRUE(warnings.empty()) << warnings[0];
  }
  EXPECT_EQ(scenario::can_merge(shards), "");
  return scenario::merge_sweeps(shards);
}

/// A preset shrunk to one grid point and an uneven trial count (10 over
/// 3 shards splits 4/3/3 — the uneven case).
ScenarioSpec shrunk_preset(const std::string& name) {
  const ScenarioSpec* preset = scenario::find_preset(name);
  EXPECT_NE(preset, nullptr) << name;
  ScenarioSpec spec = *preset;
  spec.n_grid = {spec.n_grid.front()};
  spec.trials = 10;
  return spec;
}

TEST(SweepProperty, ShardMergesBitIdenticalForEveryWorkloadAndThreadCount) {
  // One preset per workload kind — success, value (exact mean-merge),
  // counter (exact integer totals) — plus the three fault presets, whose
  // tallies AND fault-telemetry counters must obey the same contract.
  const std::vector<std::string> preset_names = {
      "ring-amos-yes",  "luby-mis-rounds", "ring-amos-words",
      "ring-amos-drop", "luby-mis-crash",  "rand-matching-churn"};
  for (const std::string& name : preset_names) {
    const ScenarioSpec spec = shrunk_preset(name);
    const scenario::CompiledScenario compiled = scenario::compile(spec);

    // The 1-thread unsharded run anchors every comparison.
    const scenario::SweepResult reference = scenario::run_sweep(compiled);
    for (const unsigned threads : {1u, 2u, 8u}) {
      std::optional<stats::ThreadPool> pool;
      const stats::ThreadPool* pool_ptr = nullptr;
      if (threads > 1) {
        pool.emplace(threads);
        pool_ptr = &*pool;
      }
      scenario::SweepOptions whole;
      whole.pool = pool_ptr;
      expect_identical(reference, scenario::run_sweep(compiled, whole),
                       name + " unsharded @" + std::to_string(threads));
      expect_identical(reference, sharded_merge(compiled, 2, pool_ptr),
                       name + " 2-way @" + std::to_string(threads));
      // 10 trials over 3 shards: 4/3/3 — the uneven partition.
      expect_identical(reference, sharded_merge(compiled, 3, pool_ptr),
                       name + " uneven 3-way @" + std::to_string(threads));
    }
  }
}

TEST(SweepProperty, ValueAndCounterPresetsValidateAndAreRegistered) {
  // The ISSUE-4 presets exist, carry the advertised workloads, and the
  // whole preset catalogue still validates.
  const scenario::ScenarioSpec* value_preset =
      scenario::find_preset("luby-mis-rounds");
  ASSERT_NE(value_preset, nullptr);
  EXPECT_EQ(value_preset->workload, local::WorkloadKind::kValue);
  EXPECT_EQ(value_preset->statistic, "rounds");
  const scenario::ScenarioSpec* counter_preset =
      scenario::find_preset("ring-amos-words");
  ASSERT_NE(counter_preset, nullptr);
  EXPECT_EQ(counter_preset->workload, local::WorkloadKind::kCounter);
  for (const ScenarioSpec& preset : scenario::preset_scenarios()) {
    EXPECT_EQ(scenario::validate(preset), "") << preset.name;
  }
}

}  // namespace
