// Property-based suites (parameterized gtest): invariants that must hold
// across graph families, sizes, seeds, and parameters.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "algo/luby_mis.h"
#include "algo/order_invariant.h"
#include "algo/rand_coloring.h"
#include "core/glue.h"
#include "core/hard_instances.h"
#include "decide/lcl_decider.h"
#include "decide/evaluate.h"
#include "decide/resilient_decider.h"
#include "graph/ball.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "lang/coloring.h"
#include "lang/mis.h"
#include "lang/relax.h"
#include "local/ball_collector.h"

namespace lnc {
namespace {

// ---------------------------------------------------------------------
// Ball invariants across families and radii.

struct FamilyCase {
  std::string name;
  graph::Graph graph;
};

FamilyCase make_family(int index) {
  switch (index) {
    case 0: return {"cycle17", graph::cycle(17)};
    case 1: return {"grid5x4", graph::grid(5, 4)};
    case 2: return {"tree31", graph::binary_tree(31)};
    case 3: return {"petersen", graph::petersen()};
    case 4: return {"regular", graph::random_regular(20, 3, 5)};
    case 5: return {"caterpillar", graph::caterpillar(6, 2)};
    default: return {"hypercube", graph::hypercube(4)};
  }
}

class BallProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BallProperty, BallInvariants) {
  const auto [family, radius] = GetParam();
  const FamilyCase fc = make_family(family);
  const graph::Graph& g = fc.graph;
  const auto reference = graph::bfs_distances(g, 0);
  const graph::BallView ball(g, 0, radius);

  // (1) Membership == distance <= radius.
  std::size_t expected_members = 0;
  for (int d : reference) {
    if (d >= 0 && d <= radius) ++expected_members;
  }
  EXPECT_EQ(ball.size(), expected_members) << fc.name;

  // (2) Recorded distances match BFS; discovery order is by distance.
  int prev = 0;
  for (graph::NodeId local = 0; local < ball.size(); ++local) {
    EXPECT_EQ(ball.distance(local), reference[ball.to_original(local)]);
    EXPECT_GE(ball.distance(local), prev);
    prev = ball.distance(local);
  }

  // (3) The paper's edge rule: no edge joins two boundary nodes; every
  // other host edge inside the ball is present.
  for (graph::NodeId local = 0; local < ball.size(); ++local) {
    for (graph::NodeId nbr : ball.neighbors(local)) {
      EXPECT_FALSE(ball.distance(local) == radius &&
                   ball.distance(nbr) == radius)
          << fc.name;
      EXPECT_TRUE(g.has_edge(ball.to_original(local), ball.to_original(nbr)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, BallProperty,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(0, 1, 2, 3)));

// ---------------------------------------------------------------------
// Collector == BallView across families (the simulation theorem).

class CollectorProperty : public ::testing::TestWithParam<int> {};

TEST_P(CollectorProperty, KnowledgeEqualsBall) {
  const FamilyCase fc = make_family(GetParam());
  const graph::NodeId n = fc.graph.node_count();
  const local::Instance inst = local::make_instance(
      fc.graph, ident::random_permutation(n, 97 + GetParam()));
  const int radius = 2;
  const auto tables = local::collect_balls(inst, radius);
  for (graph::NodeId v = 0; v < n; ++v) {
    const graph::BallView ball(inst.g, v, radius);
    // Same member set (by identity).
    std::set<ident::Identity> expected;
    for (graph::NodeId local = 0; local < ball.size(); ++local) {
      expected.insert(inst.ids[ball.to_original(local)]);
    }
    std::set<ident::Identity> got;
    for (const auto& [id, record] : tables[v]) got.insert(id);
    ASSERT_EQ(got, expected) << fc.name << " node " << v;
    // Same edge count (knowledge_edges is deduplicated).
    std::size_t ball_edges = 0;
    for (graph::NodeId local = 0; local < ball.size(); ++local) {
      ball_edges += ball.degree_in_ball(local);
    }
    EXPECT_EQ(local::knowledge_edges(tables[v]).size(), ball_edges / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, CollectorProperty,
                         ::testing::Range(0, 7));

// ---------------------------------------------------------------------
// Luby MIS correctness across seeds and families (randomized algorithms
// must be correct for EVERY coin outcome they produce).

class LubyProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(LubyProperty, AlwaysMaximalIndependent) {
  const auto [family, seed] = GetParam();
  const FamilyCase fc = make_family(family);
  const graph::NodeId n = fc.graph.node_count();
  const local::Instance inst =
      local::make_instance(fc.graph, ident::random_permutation(n, seed));
  const rand::PhiloxCoins coins(seed * 31 + 7, rand::Stream::kConstruction);
  const local::EngineResult result = algo::run_luby_mis(inst, coins);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(lang::MaximalIndependentSet{}.contains(inst, result.output))
      << fc.name << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, LubyProperty,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

// ---------------------------------------------------------------------
// Resilient relaxation monotonicity: L_f membership is monotone in f, and
// the decider's advertised guarantee stays above 1/2.

class ResilienceProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ResilienceProperty, MonotoneInFaults) {
  const std::size_t f = GetParam();
  const lang::ProperColoring base(3);
  const local::Instance inst = core::consecutive_ring(24);
  // Construct an output with exactly 2*k bad balls by planting k clashes.
  const rand::PhiloxCoins coins(f + 1, rand::Stream::kConstruction);
  const local::Labeling y = local::run_ball_algorithm(
      inst, algo::UniformRandomColoring(3), coins);
  const std::size_t faults = base.count_bad_balls(inst, y);
  EXPECT_EQ(lang::FResilient(base, f).contains(inst, y), faults <= f);
  if (f > 0) {
    // Monotone: membership at f-1 implies membership at f.
    const bool smaller = lang::FResilient(base, f - 1).contains(inst, y);
    const bool larger = lang::FResilient(base, f).contains(inst, y);
    EXPECT_LE(smaller, larger);
  }
  if (f >= 1) {
    EXPECT_GT(decide::ResilientDecider(base, f).guarantee(), 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(FaultSweep, ResilienceProperty,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 8u, 13u));

// ---------------------------------------------------------------------
// Glue invariants across part counts and sizes.

class GlueProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(GlueProperty, InvariantsAcrossShapes) {
  const auto [parts_count, min_diameter] = GetParam();
  const auto parts = core::claim2_sequence(parts_count, min_diameter);
  std::vector<graph::NodeId> anchors;
  for (std::size_t i = 0; i < parts_count; ++i) {
    anchors.push_back(static_cast<graph::NodeId>(
        (i * 3) % parts[i].node_count()));
  }
  const core::GluedInstance glued = core::theorem1_glue(parts, anchors);
  EXPECT_TRUE(graph::is_connected(glued.instance.g));
  EXPECT_LE(glued.instance.g.max_degree(), 3u);
  EXPECT_TRUE(graph::is_biconnected(glued.instance.g));
  // Every part's diameter floor survives inside the glue: distance between
  // antipodal nodes of a part cannot shrink (paths through the seam are
  // longer).
  const graph::NodeId half = parts[0].node_count() / 2;
  EXPECT_GE(graph::distance(glued.instance.g, glued.to_glued(0, 0),
                            glued.to_glued(0, half)),
            static_cast<int>(min_diameter));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GlueProperty,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{5}),
                       ::testing::Values(std::uint64_t{3}, std::uint64_t{6},
                                         std::uint64_t{10})));

// ---------------------------------------------------------------------
// Order-invariance of the whole rank-pattern family (sampled).

class PatternProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatternProperty, TableAlgorithmsDependOnlyOnOrder) {
  const std::uint64_t table_index = GetParam();
  const auto tables = algo::enumerate_tables(3, 3, table_index, 1);
  ASSERT_EQ(tables.size(), 1u);
  const algo::RankPatternRingAlgorithm alg(1, tables[0]);
  const local::Instance a = core::consecutive_ring(12);
  local::Instance b = a;
  b.ids = a.ids.shifted(500);
  EXPECT_EQ(local::run_ball_algorithm(a, alg),
            local::run_ball_algorithm(b, alg));
}

INSTANTIATE_TEST_SUITE_P(TableSweep, PatternProperty,
                         ::testing::Values(0u, 1u, 5u, 100u, 364u, 728u));

}  // namespace
}  // namespace lnc
