// Scenario subsystem tests: registry resolution, preset health, shard
// partition/merge bit-identity (the ROADMAP "Sharded batch execution"
// contract), JSON spec round trips, instance interning, and program
// recycling.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "algo/weak_color_mc.h"
#include "local/engine.h"
#include "scenario/presets.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/spec_json.h"
#include "scenario/sweep.h"

namespace {

using namespace lnc;
using scenario::ScenarioSpec;

ScenarioSpec shrunk(const ScenarioSpec& preset, std::uint64_t trials) {
  ScenarioSpec spec = preset;
  spec.trials = trials;
  spec.n_grid = {preset.n_grid.front()};
  return spec;
}

TEST(Registry, CatalogueHasTheAdvertisedSurface) {
  EXPECT_GE(scenario::topologies().all().size(), 8u);
  EXPECT_GE(scenario::languages().all().size(), 8u);
  EXPECT_GE(scenario::constructions().all().size(), 6u);
  EXPECT_GE(scenario::deciders().all().size(), 5u);
  for (const char* decider :
       {"exact", "lcl", "amos", "resilient", "slack", "local-count"}) {
    EXPECT_NE(scenario::deciders().find(decider), nullptr) << decider;
  }
}

TEST(Registry, MergedParamsFillDefaultsAndKeepOverrides) {
  const scenario::ParamSchema schema = {{"colors", 3, ""}, {"eps", 0.5, ""}};
  const scenario::ParamMap merged =
      scenario::merged_params(schema, {{"eps", 0.25}, {"other", 9}});
  EXPECT_EQ(scenario::param(merged, "colors"), 3);
  EXPECT_EQ(scenario::param(merged, "eps"), 0.25);
  EXPECT_EQ(merged.count("other"), 0u);  // foreign keys are not adopted
}

TEST(Registry, InternedInstancesAreShared) {
  const auto a = scenario::interned_instance("ring", 24);
  const auto b = scenario::interned_instance("ring", 24);
  const auto c = scenario::interned_instance("ring", 25);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(a->node_count(), 24u);
}

TEST(Presets, AtLeastEightSpanningThreeTopologyFamilies) {
  const auto& presets = scenario::preset_scenarios();
  ASSERT_GE(presets.size(), 8u);
  std::set<std::string> topologies;
  std::set<std::string> deciders;
  std::set<std::string> names;
  for (const ScenarioSpec& spec : presets) {
    EXPECT_EQ(scenario::validate(spec), "");
    topologies.insert(spec.topology);
    deciders.insert(spec.decider);
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
  }
  EXPECT_GE(topologies.size(), 3u);
  // Every decider family is exercised by some preset.
  for (const char* family : {"exact", "lcl", "amos", "resilient", "slack"}) {
    EXPECT_EQ(deciders.count(family), 1u) << family;
  }
}

TEST(Presets, EveryScenarioResolvesAndRunsOneTrialSweep) {
  for (const ScenarioSpec& preset : scenario::preset_scenarios()) {
    const ScenarioSpec spec = shrunk(preset, 1);
    const scenario::CompiledScenario compiled = scenario::compile(spec);
    const scenario::SweepResult result = scenario::run_sweep(compiled);
    ASSERT_EQ(result.rows.size(), 1u) << spec.name;
    EXPECT_EQ(result.rows[0].tally.trials, 1u) << spec.name;
    EXPECT_LE(result.rows[0].tally.successes, 1u) << spec.name;
  }
}

TEST(Sharding, ShardRangePartitionsTheTrialRange) {
  for (const std::uint64_t trials : {1u, 7u, 8u, 9u, 1000u}) {
    for (const unsigned shards : {1u, 2u, 3u, 7u}) {
      std::uint64_t covered = 0;
      std::uint64_t expected_begin = 0;
      for (unsigned s = 0; s < shards; ++s) {
        const local::TrialRange range = local::shard_range(trials, s, shards);
        EXPECT_EQ(range.begin, expected_begin);
        expected_begin = range.end;
        covered += range.count();
      }
      EXPECT_EQ(covered, trials);
      EXPECT_EQ(expected_begin, trials);
    }
  }
}

TEST(Sharding, TwoWayMergeEqualsUnshardedBitForBit) {
  for (const ScenarioSpec& preset : scenario::preset_scenarios()) {
    const ScenarioSpec spec = shrunk(preset, 9);
    const scenario::CompiledScenario compiled = scenario::compile(spec);

    const scenario::SweepResult full = scenario::run_sweep(compiled);
    scenario::SweepOptions shard0;
    shard0.shard = 0;
    shard0.shard_count = 2;
    scenario::SweepOptions shard1;
    shard1.shard = 1;
    shard1.shard_count = 2;
    const scenario::SweepResult parts[] = {
        scenario::run_sweep(compiled, shard0),
        scenario::run_sweep(compiled, shard1)};
    const scenario::SweepResult merged = scenario::merge_sweeps(parts);

    ASSERT_EQ(merged.rows.size(), full.rows.size()) << spec.name;
    for (std::size_t i = 0; i < full.rows.size(); ++i) {
      const stats::Estimate want = scenario::row_estimate(full.rows[i]);
      const stats::Estimate got = scenario::row_estimate(merged.rows[i]);
      EXPECT_EQ(got.successes, want.successes) << spec.name;
      EXPECT_EQ(got.trials, want.trials) << spec.name;
      // Bit-for-bit: identical integer tallies make identical doubles.
      EXPECT_EQ(got.p_hat, want.p_hat) << spec.name;
      EXPECT_EQ(got.ci.lo, want.ci.lo) << spec.name;
      EXPECT_EQ(got.ci.hi, want.ci.hi) << spec.name;
    }
  }
}

TEST(Sharding, UnevenThreeWayMergeAndJsonRoundTrip) {
  const ScenarioSpec* preset = scenario::find_preset("ring-amos-yes");
  ASSERT_NE(preset, nullptr);
  const ScenarioSpec spec = shrunk(*preset, 10);
  const scenario::CompiledScenario compiled = scenario::compile(spec);
  const scenario::SweepResult full = scenario::run_sweep(compiled);

  std::vector<scenario::SweepResult> shards;
  for (unsigned s = 0; s < 3; ++s) {
    scenario::SweepOptions options;
    options.shard = s;
    options.shard_count = 3;
    // Round-trip every shard through its JSON wire format, as the
    // cross-process workflow does.
    std::ostringstream os;
    scenario::write_json(os, scenario::run_sweep(compiled, options));
    shards.push_back(scenario::sweep_from_json(os.str()));
  }
  const scenario::SweepResult merged = scenario::merge_sweeps(shards);
  EXPECT_EQ(scenario::row_estimate(merged.rows[0]).p_hat,
            scenario::row_estimate(full.rows[0]).p_hat);
  EXPECT_EQ(merged.rows[0].tally.successes, full.rows[0].tally.successes);
}

TEST(Sharding, TelemetryTwoWayMergeEqualsUnshardedBitForBit) {
  // The deterministic communication counters obey the same partition
  // contract as the success tallies: any shard split merges back to the
  // unsharded counters exactly, for every preset.
  for (const ScenarioSpec& preset : scenario::preset_scenarios()) {
    const ScenarioSpec spec = shrunk(preset, 9);
    const scenario::CompiledScenario compiled = scenario::compile(spec);
    const scenario::SweepResult full = scenario::run_sweep(compiled);
    scenario::SweepOptions shard0;
    shard0.shard_count = 2;
    scenario::SweepOptions shard1;
    shard1.shard = 1;
    shard1.shard_count = 2;
    const scenario::SweepResult parts[] = {
        scenario::run_sweep(compiled, shard0),
        scenario::run_sweep(compiled, shard1)};
    const scenario::SweepResult merged = scenario::merge_sweeps(parts);
    ASSERT_EQ(merged.rows.size(), full.rows.size()) << spec.name;
    for (std::size_t i = 0; i < full.rows.size(); ++i) {
      const local::Telemetry& want = full.rows[i].tally.telemetry;
      const local::Telemetry& got = merged.rows[i].tally.telemetry;
      EXPECT_EQ(got.messages_sent, want.messages_sent) << spec.name;
      EXPECT_EQ(got.words_sent, want.words_sent) << spec.name;
      EXPECT_EQ(got.rounds_executed, want.rounds_executed) << spec.name;
      EXPECT_EQ(got.ball_expansions, want.ball_expansions) << spec.name;
    }
  }
}

TEST(Sharding, TelemetryUnevenThreeWayMergeSurvivesJsonRoundTrip) {
  const ScenarioSpec* preset = scenario::find_preset("ring-amos-yes");
  ASSERT_NE(preset, nullptr);
  const ScenarioSpec spec = shrunk(*preset, 10);
  const scenario::CompiledScenario compiled = scenario::compile(spec);
  const scenario::SweepResult full = scenario::run_sweep(compiled);
  ASSERT_GT(full.rows[0].tally.telemetry.messages_sent, 0u);
  ASSERT_GT(full.rows[0].tally.telemetry.words_sent, 0u);
  ASSERT_GT(full.rows[0].tally.telemetry.rounds_executed, 0u);

  std::vector<scenario::SweepResult> shards;
  for (unsigned s = 0; s < 3; ++s) {  // 10 trials over 3 shards: 4/3/3
    scenario::SweepOptions options;
    options.shard = s;
    options.shard_count = 3;
    std::ostringstream os;
    scenario::write_json(os, scenario::run_sweep(compiled, options));
    std::vector<std::string> warnings;
    shards.push_back(scenario::sweep_from_json(os.str(), &warnings));
    EXPECT_TRUE(warnings.empty()) << warnings[0];
  }
  const scenario::SweepResult merged = scenario::merge_sweeps(shards);
  EXPECT_TRUE(merged.rows[0].tally.telemetry.deterministic_equal(
      full.rows[0].tally.telemetry));
}

TEST(ValueSweep, SummaryLinesAreGrepStableAndThreadInvariant) {
  // The value-mode CLI summary line prints the mean/stddev at full
  // round-trip precision, so string equality across thread counts IS the
  // exact-merge contract. A hand-built row pins the exact format.
  scenario::SweepResult result;
  result.scenario = "golden";
  result.workload = local::WorkloadKind::kValue;
  scenario::SweepRow row;
  row.requested_n = 8;
  row.actual_n = 8;
  row.total_trials = 2;
  row.tally.trials = 2;
  row.tally.value_sum.add(1.5);
  row.tally.value_sum.add(2.5);
  row.tally.value_sum_sq.add(1.5 * 1.5);
  row.tally.value_sum_sq.add(2.5 * 2.5);
  result.rows.push_back(row);
  const std::vector<std::string> golden = scenario::summary_lines(result);
  ASSERT_EQ(golden.size(), 1u);
  EXPECT_EQ(golden[0],
            "value[golden/n8]: mean=2 stddev=0.70710678118654757 trials=2");

  // Live sweeps: identical lines at 1 and 8 worker threads.
  const ScenarioSpec* preset = scenario::find_preset("luby-mis-rounds");
  ASSERT_NE(preset, nullptr);
  const ScenarioSpec spec = shrunk(*preset, 12);
  const scenario::CompiledScenario compiled = scenario::compile(spec);
  const std::vector<std::string> sequential =
      scenario::summary_lines(scenario::run_sweep(compiled));
  const stats::ThreadPool pool(8);
  scenario::SweepOptions pooled;
  pooled.pool = &pool;
  EXPECT_EQ(sequential,
            scenario::summary_lines(scenario::run_sweep(compiled, pooled)));
  ASSERT_EQ(sequential.size(), 1u);
  EXPECT_EQ(sequential[0].rfind("value[luby-mis-rounds/n64]: mean=", 0), 0u)
      << sequential[0];
  EXPECT_NE(sequential[0].find(" stddev="), std::string::npos);
  EXPECT_NE(sequential[0].find(" trials=12"), std::string::npos);

  // Sharded (incomplete) results and success workloads emit no lines.
  scenario::SweepOptions half;
  half.shard_count = 2;
  EXPECT_TRUE(
      scenario::summary_lines(scenario::run_sweep(compiled, half)).empty());
}

TEST(ValueSweep, JsonRoundTripCarriesTheMeanBlock) {
  const ScenarioSpec* preset = scenario::find_preset("luby-mis-rounds");
  ASSERT_NE(preset, nullptr);
  const scenario::CompiledScenario compiled =
      scenario::compile(shrunk(*preset, 9));

  scenario::SweepOptions options;
  options.shard = 1;
  options.shard_count = 2;
  const scenario::SweepResult shard = scenario::run_sweep(compiled, options);
  std::ostringstream os;
  scenario::write_json(os, shard);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"workload\": \"value\""), std::string::npos);
  EXPECT_NE(text.find("\"values\": {\"sum\": "), std::string::npos);
  EXPECT_NE(text.find("\"exact_sum\": \""), std::string::npos);

  std::vector<std::string> warnings;
  const scenario::SweepResult parsed =
      scenario::sweep_from_json(text, &warnings);
  EXPECT_TRUE(warnings.empty()) << warnings[0];
  EXPECT_EQ(parsed.workload, local::WorkloadKind::kValue);
  ASSERT_EQ(parsed.rows.size(), shard.rows.size());
  for (std::size_t i = 0; i < shard.rows.size(); ++i) {
    EXPECT_TRUE(parsed.rows[i].tally.value_sum ==
                shard.rows[i].tally.value_sum);
    EXPECT_TRUE(parsed.rows[i].tally.value_sum_sq ==
                shard.rows[i].tally.value_sum_sq);
  }
}

TEST(ValueSweep, CounterJsonRoundTripCarriesCounts) {
  const ScenarioSpec* preset = scenario::find_preset("ring-amos-words");
  ASSERT_NE(preset, nullptr);
  const scenario::CompiledScenario compiled =
      scenario::compile(shrunk(*preset, 7));
  const scenario::SweepResult full = scenario::run_sweep(compiled);
  ASSERT_EQ(full.rows[0].tally.counts.size(), 1u);
  EXPECT_GT(full.rows[0].tally.counts[0], 0u);

  std::ostringstream os;
  scenario::write_json(os, full);
  EXPECT_NE(os.str().find("\"workload\": \"counter\""), std::string::npos);
  EXPECT_NE(os.str().find("\"counts\": ["), std::string::npos);
  std::vector<std::string> warnings;
  const scenario::SweepResult parsed =
      scenario::sweep_from_json(os.str(), &warnings);
  EXPECT_TRUE(warnings.empty()) << warnings[0];
  EXPECT_EQ(parsed.rows[0].tally.counts, full.rows[0].tally.counts);
}

TEST(ValueSweep, WarnsOnUnknownValueRowKeysButStillParses) {
  // A value shard file from a future binary generation: foreign keys in
  // a row's values block (and next to it) warn but do not break the
  // merge, and the exact accumulators still read back bit-perfectly.
  scenario::SweepResult seeded;
  seeded.scenario = "x";
  seeded.workload = local::WorkloadKind::kValue;
  scenario::SweepRow row;
  row.requested_n = 8;
  row.actual_n = 8;
  row.total_trials = 4;
  row.tally.trials = 4;
  row.tally.value_sum.add(0.1);
  row.tally.value_sum.add(2.25);
  row.tally.value_sum_sq.add(0.1 * 0.1);
  row.tally.value_sum_sq.add(2.25 * 2.25);
  seeded.rows.push_back(row);
  std::ostringstream os;
  scenario::write_json(os, seeded);
  std::string text = os.str();
  const std::string needle = "\"exact_sum\":";
  text.insert(text.find(needle), "\"future_moment\": 3.5, ");
  ASSERT_NE(text.find("future_moment"), std::string::npos);

  std::vector<std::string> warnings;
  const scenario::SweepResult parsed =
      scenario::sweep_from_json(text, &warnings);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("future_moment"), std::string::npos);
  EXPECT_NE(warnings[0].find("values-block"), std::string::npos);
  EXPECT_TRUE(parsed.rows[0].tally.value_sum ==
              seeded.rows[0].tally.value_sum);
  EXPECT_EQ(scenario::row_mean(parsed.rows[0]).mean,
            scenario::row_mean(seeded.rows[0]).mean);

  // An unknown workload tag is a hard error, not a warning — the reader
  // cannot merge tallies it does not understand.
  EXPECT_THROW(
      scenario::sweep_from_json(
          "{\"scenario\": \"x\", \"base_seed\": 1, \"shard\": 0, "
          "\"shard_count\": 1, \"workload\": \"vibes\", \"rows\": []}"),
      std::runtime_error);
}

TEST(ValueSweep, MergeRejectsMixedWorkloads) {
  const ScenarioSpec* value_preset = scenario::find_preset("luby-mis-rounds");
  ASSERT_NE(value_preset, nullptr);
  const scenario::CompiledScenario compiled =
      scenario::compile(shrunk(*value_preset, 8));
  scenario::SweepOptions half;
  half.shard_count = 2;
  scenario::SweepResult shard0 = scenario::run_sweep(compiled, half);
  half.shard = 1;
  scenario::SweepResult shard1 = scenario::run_sweep(compiled, half);
  shard1.workload = local::WorkloadKind::kSuccess;  // simulated stale file
  const scenario::SweepResult mixed[] = {shard0, shard1};
  EXPECT_NE(scenario::can_merge(mixed).find("workload"), std::string::npos);
}

TEST(SweepJson, WarnsOnUnrecognizedKeysButStillParses) {
  // A shard file from a different binary generation (here: an invented
  // top-level key and an invented row key) must parse — old files stay
  // mergeable — but surface both foreign keys as warnings.
  const std::string text =
      "{\"scenario\": \"x\", \"base_seed\": 1, \"shard\": 0, "
      "\"shard_count\": 1, \"future_field\": 7, \"rows\": "
      "[{\"n\": 8, \"actual_n\": 8, \"total_trials\": 4, \"trials\": 4, "
      "\"successes\": 2, \"exotic\": 1}]}";
  std::vector<std::string> warnings;
  const scenario::SweepResult result =
      scenario::sweep_from_json(text, &warnings);
  EXPECT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].tally.successes, 2u);
  // Pre-telemetry rows read back with zeroed counters.
  EXPECT_EQ(result.rows[0].tally.telemetry.messages_sent, 0u);
  ASSERT_EQ(warnings.size(), 2u);
  EXPECT_NE(warnings[0].find("future_field"), std::string::npos);
  EXPECT_NE(warnings[1].find("exotic"), std::string::npos);
  // Without a warning sink the same file parses silently (library use).
  EXPECT_EQ(scenario::sweep_from_json(text).rows.size(), 1u);
}

TEST(Sharding, CanMergeRejectsDuplicateAndIncompleteShardSets) {
  const ScenarioSpec* preset = scenario::find_preset("ring-amos-yes");
  ASSERT_NE(preset, nullptr);
  const ScenarioSpec spec = shrunk(*preset, 8);
  const scenario::CompiledScenario compiled = scenario::compile(spec);
  scenario::SweepOptions half;
  half.shard_count = 2;
  const scenario::SweepResult shard0 = scenario::run_sweep(compiled, half);
  half.shard = 1;
  const scenario::SweepResult shard1 = scenario::run_sweep(compiled, half);

  const scenario::SweepResult ok[] = {shard0, shard1};
  EXPECT_EQ(scenario::can_merge(ok), "");
  // The same half twice sums to the right trial count but double-counts.
  const scenario::SweepResult duplicate[] = {shard0, shard0};
  EXPECT_NE(scenario::can_merge(duplicate), "");
  // A missing half leaves trials uncovered.
  const scenario::SweepResult incomplete[] = {shard0};
  EXPECT_NE(scenario::can_merge(incomplete), "");
}

TEST(SpecJson, FullWidthSeedsRoundTripExactly) {
  const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
  const ScenarioSpec spec = scenario::spec_from_json(
      "{\"seed\": 18446744073709551615, \"trials\": 9007199254740993}");
  EXPECT_EQ(spec.base_seed, big);
  EXPECT_EQ(spec.trials, 9007199254740993ull);  // 2^53 + 1: double rounds
}

TEST(Validation, RejectsUnknownComponentsAndParams) {
  ScenarioSpec spec;
  spec.name = "bad";
  spec.topology = "moebius";
  spec.language = "coloring";
  spec.construction = "rand-coloring";
  spec.n_grid = {8};
  EXPECT_NE(scenario::validate(spec).find("unknown topology"),
            std::string::npos);

  spec.topology = "ring";
  spec.params["frobnication"] = 1;
  EXPECT_NE(scenario::validate(spec).find("frobnication"), std::string::npos);
  spec.params.clear();

  spec.construction = "cole-vishkin";
  spec.topology = "grid";
  EXPECT_NE(scenario::validate(spec).find("ring"), std::string::npos);

  spec.topology = "ring";
  spec.construction = "rand-coloring";
  spec.language = "amos";
  spec.decider = "resilient";
  EXPECT_NE(scenario::validate(spec).find("LCL"), std::string::npos);
}

TEST(Validation, AllSixRegistriesShareOneUnknownDiagnosticShape) {
  // Every string-addressable registry — topology, language, construction,
  // decider, fault, statistic — answers an unknown name with the same
  // "unknown <kind> '<name>'; available: …" shape, so a CLI user always
  // sees the catalogue they can pick from, whichever knob they mistyped.
  const auto expect_shape = [](const std::string& message,
                               const std::string& kind, const char* member) {
    EXPECT_EQ(message.rfind("unknown " + kind + " 'nope'; available: ", 0), 0u)
        << message;
    EXPECT_NE(message.find(member), std::string::npos) << message;
  };
  ScenarioSpec base;
  base.name = "diag";
  base.topology = "ring";
  base.language = "coloring";
  base.construction = "rand-coloring";
  base.decider = "exact";
  base.n_grid = {8};
  ASSERT_EQ(scenario::validate(base), "");

  ScenarioSpec spec = base;
  spec.topology = "nope";
  expect_shape(scenario::validate(spec), "topology", "ring");
  spec = base;
  spec.language = "nope";
  expect_shape(scenario::validate(spec), "language", "coloring");
  spec = base;
  spec.construction = "nope";
  expect_shape(scenario::validate(spec), "construction", "rand-coloring");
  spec = base;
  spec.decider = "nope";
  expect_shape(scenario::validate(spec), "decider", "exact");
  spec = base;
  spec.fault = "nope";
  expect_shape(scenario::validate(spec), "fault", "drop");
  spec = base;
  spec.workload = local::WorkloadKind::kValue;
  spec.statistic = "nope";
  expect_shape(scenario::validate(spec), "statistic", "rounds");
}

TEST(Validation, FaultParamsAndCompatibilityAreDiagnosed) {
  ScenarioSpec spec;
  spec.name = "faulty";
  spec.topology = "ring";
  spec.language = "coloring";
  spec.construction = "rand-coloring";
  spec.decider = "exact";
  spec.n_grid = {8};
  spec.fault = "drop";
  spec.fault_params = {{"p-loss", 0.25}};
  EXPECT_EQ(scenario::validate(spec), "");

  // Fault params live in their own namespace, validated against the fault
  // model's schema only: foreign keys and out-of-range values name the
  // fault model, and `none` declares no parameters at all.
  spec.fault_params = {{"p-crash", 0.25}};
  EXPECT_NE(scenario::validate(spec).find("fault model 'drop'"),
            std::string::npos);
  spec.fault_params = {{"p-loss", 1.5}};
  EXPECT_NE(scenario::validate(spec).find("range"), std::string::npos);
  spec.fault = "none";
  spec.fault_params = {{"p-loss", 0.1}};
  EXPECT_NE(scenario::validate(spec).find("fault model 'none'"),
            std::string::npos);

  // Non-trivial faults require a fault-capable construction.
  spec.fault = "drop";
  spec.fault_params.clear();
  spec.construction = "greedy-coloring";
  EXPECT_NE(scenario::validate(spec).find("fault"), std::string::npos);
}

TEST(Validation, RejectsOutOfRangeAndNanParameters) {
  ScenarioSpec spec;
  spec.name = "ranges";
  spec.topology = "ring";
  spec.language = "coloring";
  spec.construction = "rand-coloring";
  spec.decider = "slack";
  spec.n_grid = {12};
  spec.params = {{"eps", 0.5}};
  EXPECT_EQ(scenario::validate(spec), "");
  spec.params["eps"] = 2.0;  // slack decider declares eps in (0, 1]
  EXPECT_NE(scenario::validate(spec).find("range"), std::string::npos);
  // NaN satisfies no declared range — it must be diagnosed here, not
  // abort later in the decider's constructor precondition.
  spec.params["eps"] = std::nan("");
  EXPECT_NE(scenario::validate(spec).find("range"), std::string::npos);
  spec.params = {{"colors", 0}};  // below the palette minimum
  spec.decider = "exact";
  EXPECT_NE(scenario::validate(spec).find("range"), std::string::npos);
}

TEST(ValueSweep, CanMergeRejectsMismatchedCounterWidths) {
  // A shard file from a binary generation with a different counter-slot
  // layout must be refused with a diagnostic, not an abort.
  const ScenarioSpec* preset = scenario::find_preset("ring-amos-words");
  ASSERT_NE(preset, nullptr);
  const scenario::CompiledScenario compiled =
      scenario::compile(shrunk(*preset, 8));
  scenario::SweepOptions half;
  half.shard_count = 2;
  const scenario::SweepResult shard0 = scenario::run_sweep(compiled, half);
  half.shard = 1;
  scenario::SweepResult shard1 = scenario::run_sweep(compiled, half);
  shard1.rows[0].tally.counts.push_back(7);  // extra foreign slot
  const scenario::SweepResult mismatched[] = {shard0, shard1};
  EXPECT_NE(scenario::can_merge(mismatched).find("widths"),
            std::string::npos);
}

TEST(SpecJson, ShippedScenarioFilesParseAndValidate) {
  const std::filesystem::path dir =
      std::filesystem::path(LNC_SOURCE_DIR) / "scenarios";
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    ++count;
    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    const ScenarioSpec spec = scenario::spec_from_json(text.str());
    EXPECT_EQ(scenario::validate(spec), "") << entry.path();
    EXPECT_EQ(spec.name, entry.path().stem().string()) << entry.path();
    // Shipped files mirror registered presets.
    EXPECT_NE(scenario::find_preset(spec.name), nullptr) << entry.path();
  }
  EXPECT_GE(count, 8u);
}

TEST(SpecJson, MalformedInputThrowsWithOffset) {
  EXPECT_THROW(scenario::Json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(scenario::spec_from_json("{\"nonsense\": 1}"),
               std::runtime_error);
  EXPECT_THROW(scenario::spec_from_json("{\"success\": \"maybe\"}"),
               std::runtime_error);
}

TEST(Recycling, ScratchReuseAcrossFactoriesStaysCorrect) {
  const local::Instance inst = scenario::build_instance("ring", 32);
  const rand::PhiloxCoins coins(7, rand::Stream::kConstruction);
  const algo::WeakColorMcFactory factory(4);

  local::EngineOptions fresh;
  fresh.coins = &coins;
  const local::EngineResult want = run_engine(inst, factory, fresh);

  local::EngineScratch scratch;
  local::EngineOptions reused;
  reused.coins = &coins;
  reused.scratch = &scratch;
  // Second run recycles the retained programs in place; a factory with a
  // DIFFERENT configuration afterwards must not reuse them.
  const local::EngineResult first = run_engine(inst, factory, reused);
  const local::EngineResult second = run_engine(inst, factory, reused);
  EXPECT_EQ(first.output, want.output);
  EXPECT_EQ(second.output, want.output);

  const algo::WeakColorMcFactory other(2);
  const local::EngineResult shorter = run_engine(inst, other, reused);
  local::EngineOptions fresh_other;
  fresh_other.coins = &coins;
  EXPECT_EQ(shorter.output, run_engine(inst, other, fresh_other).output);
}

}  // namespace
