// Tests for src/local: instance validation, the synchronous engine, and
// the centerpiece equivalence — the flooding ball-collection protocol
// gathers exactly B_G(v, t) as defined in the paper (section 2.1.1).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/ball.h"
#include "graph/generators.h"
#include "local/ball_collector.h"
#include "local/engine.h"
#include "local/instance.h"
#include "local/runner.h"

namespace lnc::local {
namespace {

Instance ring_instance(graph::NodeId n) {
  return make_instance(graph::cycle(n), ident::consecutive(n));
}

TEST(Instance, LabelBitsAndPromise) {
  EXPECT_EQ(label_bits(0), 0);
  EXPECT_EQ(label_bits(1), 1);
  EXPECT_EQ(label_bits(7), 3);
  EXPECT_EQ(label_bits(8), 4);

  const Instance inst = ring_instance(6);
  const Labeling small(6, 3);
  const Labeling big(6, 1u << 10);
  EXPECT_TRUE(promise_holds(inst.g, small, small, 4));
  EXPECT_FALSE(promise_holds(inst.g, small, big, 4));
  // Degree violation: a star with center degree 5 breaks F_4.
  EXPECT_FALSE(promise_holds(graph::star(6), small, small, 4));
}

// A trivial one-round program: output the max identity seen in N[v].
class MaxIdProgram final : public NodeProgram {
 public:
  bool init(const NodeEnv& env) override {
    best_ = env.id;
    return false;
  }
  void send(int, MessageWriter& out) override { out.push(best_); }
  bool receive(int, const Inbox& inbox) override {
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      best_ = std::max(best_, inbox[p][0]);
    }
    return true;
  }
  Label output() const override { return best_; }

 private:
  std::uint64_t best_ = 0;
};

class MaxIdFactory final : public NodeProgramFactory {
 public:
  std::string name() const override { return "max-id-1-round"; }
  std::unique_ptr<NodeProgram> create() const override {
    return std::make_unique<MaxIdProgram>();
  }
};

TEST(Engine, OneRoundProgramRunsOneRound) {
  const Instance inst = ring_instance(8);
  const EngineResult result = run_engine(inst, MaxIdFactory{});
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 1);
  // Node v's closed neighborhood max: ids are v+1, so node 0 sees {8,1,2}.
  EXPECT_EQ(result.output[0], 8u);   // neighbor 7 has id 8
  EXPECT_EQ(result.output[3], 5u);   // ids {3,4,5}
  EXPECT_EQ(result.output[7], 8u);
}

TEST(Engine, ParallelStepsMatchSequential) {
  const Instance inst = ring_instance(64);
  const EngineResult seq = run_engine(inst, MaxIdFactory{});
  EngineOptions options;
  stats::ThreadPool pool(4);
  options.pool = &pool;
  const EngineResult par = run_engine(inst, MaxIdFactory{}, options);
  EXPECT_EQ(seq.output, par.output);
  EXPECT_EQ(seq.rounds, par.rounds);
}

TEST(Engine, MaxRoundsGuardReportsIncomplete) {
  // A program that never halts.
  class Forever final : public NodeProgram {
   public:
    bool init(const NodeEnv&) override { return false; }
    void send(int, MessageWriter&) override {}
    bool receive(int, const Inbox&) override { return false; }
    Label output() const override { return 0; }
  };
  class ForeverFactory final : public NodeProgramFactory {
   public:
    std::string name() const override { return "forever"; }
    std::unique_ptr<NodeProgram> create() const override {
      return std::make_unique<Forever>();
    }
  };
  const Instance inst = ring_instance(4);
  EngineOptions options;
  options.max_rounds = 10;
  const EngineResult result = run_engine(inst, ForeverFactory{}, options);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds, 10);
}

TEST(BallCollector, ZeroRoundsKnowsOnlySelf) {
  const Instance inst = ring_instance(5);
  const auto tables = collect_balls(inst, 0);
  ASSERT_EQ(tables.size(), 5u);
  for (graph::NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(tables[v].size(), 1u);
    EXPECT_TRUE(tables[v].count(inst.ids[v]));
    EXPECT_FALSE(tables[v].at(inst.ids[v]).adjacency_known);
  }
}

/// The ball B_G(v, t) mapped to identity space: member identities and the
/// identity-pair edge set, for comparison with collector knowledge.
struct IdentityBall {
  std::set<ident::Identity> members;
  std::set<std::pair<ident::Identity, ident::Identity>> edges;
};

IdentityBall identity_ball(const Instance& inst, graph::NodeId center,
                           int radius) {
  const graph::BallView view(inst.g, center, radius);
  IdentityBall ball;
  for (graph::NodeId local = 0; local < view.size(); ++local) {
    ball.members.insert(inst.ids[view.to_original(local)]);
  }
  for (graph::NodeId local = 0; local < view.size(); ++local) {
    const ident::Identity a = inst.ids[view.to_original(local)];
    for (graph::NodeId nbr : view.neighbors(local)) {
      const ident::Identity b = inst.ids[view.to_original(nbr)];
      ball.edges.emplace(std::min(a, b), std::max(a, b));
    }
  }
  return ball;
}

/// The simulation-theorem equivalence: after t rounds of flooding, every
/// node's knowledge is exactly B_G(v, t) — same member identities, same
/// edges (boundary-boundary edges absent).
void expect_collector_matches_balls(const Instance& inst, int radius) {
  const auto tables = collect_balls(inst, radius);
  for (graph::NodeId v = 0; v < inst.node_count(); ++v) {
    const IdentityBall expected = identity_ball(inst, v, radius);
    std::set<ident::Identity> known_members;
    for (const auto& [id, record] : tables[v]) known_members.insert(id);
    EXPECT_EQ(known_members, expected.members)
        << "members differ at node " << v << " radius " << radius;
    const auto edges = knowledge_edges(tables[v]);
    const std::set<std::pair<ident::Identity, ident::Identity>> edge_set(
        edges.begin(), edges.end());
    EXPECT_EQ(edge_set, expected.edges)
        << "edges differ at node " << v << " radius " << radius;
  }
}

TEST(BallCollector, MatchesBallViewOnCycle) {
  const Instance inst = ring_instance(9);
  for (int radius : {1, 2, 3}) {
    expect_collector_matches_balls(inst, radius);
  }
}

TEST(BallCollector, MatchesBallViewOnCompleteGraph) {
  // K_5, radius 1: boundary-boundary edges between the four distance-1
  // nodes must be ABSENT from the collected knowledge.
  const Instance inst =
      make_instance(graph::complete(5), ident::consecutive(5));
  expect_collector_matches_balls(inst, 1);
}

TEST(BallCollector, MatchesBallViewOnTreeAndGrid) {
  const Instance tree =
      make_instance(graph::binary_tree(15), ident::consecutive(15));
  expect_collector_matches_balls(tree, 2);

  const Instance g = make_instance(graph::grid(4, 4),
                                   ident::random_permutation(16, 3));
  expect_collector_matches_balls(g, 2);
}

TEST(BallCollector, MatchesBallViewOnPetersen) {
  const Instance inst =
      make_instance(graph::petersen(), ident::random_permutation(10, 1));
  for (int radius : {1, 2}) {
    expect_collector_matches_balls(inst, radius);
  }
}

// Ball-algorithm runner basics.
class CenterRankAlgorithm final : public BallAlgorithm {
 public:
  std::string name() const override { return "center-rank"; }
  int radius() const override { return 1; }
  Label compute(const View& view) const override {
    // Rank of the center identity within its ball (0-based).
    Label rank = 0;
    for (graph::NodeId local = 1; local < view.ball->size(); ++local) {
      if (view.identity(local) < view.center_identity()) ++rank;
    }
    return rank;
  }
};

TEST(Runner, BallAlgorithmSeesOnlyTheBall) {
  const Instance inst = ring_instance(7);
  const Labeling output = run_ball_algorithm(inst, CenterRankAlgorithm{});
  // On the consecutive ring every interior node has one smaller neighbor;
  // node 0 (identity 1) has none.
  EXPECT_EQ(output[0], 0u);
  for (graph::NodeId v = 1; v + 1 < 7; ++v) EXPECT_EQ(output[v], 1u);
  EXPECT_EQ(output[6], 2u);  // identity 7 beats both neighbors... check:
  // node 6 has identity 7, neighbors have identities 6 and 1 — both
  // smaller, so rank 2.
}

TEST(Runner, IdOverrideChangesWhatAlgorithmsSee) {
  const Instance inst = ring_instance(5);
  const graph::BallView ball(inst.g, 2, 1);
  View plain;
  plain.ball = &ball;
  plain.instance = &inst;
  const std::vector<ident::Identity> fake = {100, 1, 2};
  View overridden = plain;
  overridden.id_override = &fake;
  EXPECT_EQ(plain.identity(0), 3u);        // true identity of node 2
  EXPECT_EQ(overridden.identity(0), 100u);  // override is local-indexed
}

TEST(BallCollector, DisconnectedGraphKnowsOnlyItsComponent) {
  graph::Graph::Builder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4).add_edge(4, 5);
  const Instance inst = make_instance(b.build(), ident::consecutive(6));
  const auto tables = collect_balls(inst, 4);  // radius > component size
  EXPECT_EQ(tables[0].size(), 3u);  // nodes 0..2 only
  EXPECT_EQ(tables[5].size(), 3u);  // nodes 3..5 only
  EXPECT_FALSE(tables[0].count(inst.ids[3]));
}

TEST(Engine, IsolatedNodesHaltInstantly) {
  // A graph with isolated nodes: they receive no messages but still obey
  // the protocol (MaxId halts after one round with its own id).
  graph::Graph::Builder b(4);
  b.add_edge(0, 1);
  const Instance inst = make_instance(b.build(), ident::consecutive(4));
  const EngineResult result = run_engine(inst, MaxIdFactory{});
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.output[2], inst.ids[2]);  // isolated: sees only itself
  EXPECT_EQ(result.output[0], inst.ids[1]);  // paired: max of the two
}

TEST(Runner, GrantNExposesNodeCount) {
  const Instance inst = ring_instance(6);
  class NAlgorithm final : public BallAlgorithm {
   public:
    std::string name() const override { return "n-reader"; }
    int radius() const override { return 0; }
    Label compute(const View& view) const override {
      return view.n_nodes.value_or(0);
    }
  };
  RunOptions options;
  options.grant_n = true;
  const Labeling with_n = run_ball_algorithm(inst, NAlgorithm{}, options);
  EXPECT_EQ(with_n[0], 6u);
  const Labeling without = run_ball_algorithm(inst, NAlgorithm{});
  EXPECT_EQ(without[0], 0u);
}

}  // namespace
}  // namespace lnc::local
