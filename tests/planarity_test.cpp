// Tests for graph/planarity: the left-right test against known graphs,
// against the brute-force Kuratowski-minor oracle on random small graphs,
// and the paper's section-5 claim that the Theorem-1 glue preserves
// planarity.
#include <gtest/gtest.h>

#include "core/glue.h"
#include "core/hard_instances.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/planarity.h"
#include "rand/splitmix.h"

namespace lnc::graph {
namespace {

TEST(Planarity, KnownPlanarGraphs) {
  EXPECT_TRUE(is_planar(cycle(5)));
  EXPECT_TRUE(is_planar(cycle(100)));
  EXPECT_TRUE(is_planar(path(50)));
  EXPECT_TRUE(is_planar(star(20)));
  EXPECT_TRUE(is_planar(complete(4)));
  EXPECT_TRUE(is_planar(grid(6, 7)));
  EXPECT_TRUE(is_planar(binary_tree(63)));
  EXPECT_TRUE(is_planar(caterpillar(8, 3)));
  EXPECT_TRUE(is_planar(hypercube(3)));  // Q3 (the cube) is planar
}

TEST(Planarity, KnownNonPlanarGraphs) {
  EXPECT_FALSE(is_planar(complete(5)));   // K5
  EXPECT_FALSE(is_planar(complete(6)));
  EXPECT_FALSE(is_planar(petersen()));    // Petersen graph
  EXPECT_FALSE(is_planar(hypercube(4)));  // Q4
  EXPECT_FALSE(is_planar(torus(4, 4)));   // C4 x C4 contains K5 minors

  // K3,3 built explicitly.
  Graph::Builder b(6);
  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 3; j < 6; ++j) b.add_edge(i, j);
  }
  EXPECT_FALSE(is_planar(b.build()));
}

TEST(Planarity, KuratowskiMinusAnEdgeIsPlanar) {
  // K5 minus any edge is planar; so is K3,3 minus any edge.
  {
    Graph::Builder b(5);
    for (NodeId i = 0; i < 5; ++i) {
      for (NodeId j = i + 1; j < 5; ++j) {
        if (i == 0 && j == 1) continue;
        b.add_edge(i, j);
      }
    }
    EXPECT_TRUE(is_planar(b.build()));
  }
  {
    Graph::Builder b(6);
    for (NodeId i = 0; i < 3; ++i) {
      for (NodeId j = 3; j < 6; ++j) {
        if (i == 0 && j == 3) continue;
        b.add_edge(i, j);
      }
    }
    EXPECT_TRUE(is_planar(b.build()));
  }
}

TEST(Planarity, SubdivisionPreservesBothAnswers) {
  // Subdividing edges never changes planarity (Kuratowski).
  const Graph k5 = complete(5);
  Graph sub = subdivide_edge(k5, 0, 1);
  sub = subdivide_edge(sub, 2, 3);
  EXPECT_FALSE(is_planar(sub));

  const Graph c = cycle(6);
  EXPECT_TRUE(is_planar(subdivide_edge(c, 0, 1)));
}

TEST(Planarity, DisjointUnionIsPlanarIffAllPartsAre) {
  const Graph a = grid(3, 3);
  const Graph b = cycle(7);
  const Graph k5 = complete(5);
  EXPECT_TRUE(is_planar(disjoint_union({&a, &b}).graph));
  EXPECT_FALSE(is_planar(disjoint_union({&a, &k5}).graph));
}

TEST(Planarity, BruteForceOracleOnKnownGraphs) {
  EXPECT_TRUE(has_k5_or_k33_minor_bruteforce(complete(5)));
  EXPECT_FALSE(has_k5_or_k33_minor_bruteforce(complete(4)));
  EXPECT_FALSE(has_k5_or_k33_minor_bruteforce(cycle(8)));
  Graph::Builder b(6);
  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 3; j < 6; ++j) b.add_edge(i, j);
  }
  EXPECT_TRUE(has_k5_or_k33_minor_bruteforce(b.build()));
}

TEST(Planarity, CrossValidatedAgainstMinorOracle) {
  // Random graphs on 7 nodes: the LR answer must equal the Kuratowski/
  // Wagner characterization computed by brute force.
  rand::SplitMix64 rng(2024);
  int checked = 0;
  int nonplanar_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Graph::Builder b(7);
    for (NodeId i = 0; i < 7; ++i) {
      for (NodeId j = i + 1; j < 7; ++j) {
        // Edge probability ~0.45 straddles the planarity threshold at
        // n = 7 (m ~ 9.5 of 15 edges max; 3n-6 = 15).
        if (rng.next_below(100) < 45) b.add_edge(i, j);
      }
    }
    const Graph g = b.build();
    const bool lr = is_planar(g);
    const bool minor = has_k5_or_k33_minor_bruteforce(g);
    EXPECT_EQ(lr, !minor) << "trial " << trial;
    ++checked;
    if (!lr) ++nonplanar_seen;
  }
  EXPECT_EQ(checked, 40);
  EXPECT_GT(nonplanar_seen, 0);  // the sweep must exercise both answers
  EXPECT_LT(nonplanar_seen, 40);
}

TEST(Planarity, EulerBoundNecessaryCondition) {
  EXPECT_TRUE(euler_bound_holds(grid(5, 5)));
  EXPECT_FALSE(euler_bound_holds(complete(6)));  // m = 15 > 3*6-6 = 12
  // K3,3 passes the triangle-free bound check? m = 9 <= 2*6-4 = 8 is
  // false -> euler rejects it even without the full test.
  Graph::Builder b(6);
  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 3; j < 6; ++j) b.add_edge(i, j);
  }
  EXPECT_FALSE(euler_bound_holds(b.build()));
}

TEST(Planarity, TheGluePreservesPlanarity) {
  // Section 5: the Theorem-1 construction preserves planarity. Rings are
  // planar; the glue of rings must be planar for every shape we use.
  for (std::size_t parts_count : {2u, 3u, 5u, 8u}) {
    const auto parts = core::claim2_sequence(parts_count, 4);
    std::vector<NodeId> anchors(parts_count, 0);
    const core::GluedInstance glued =
        core::theorem1_glue(parts, anchors);
    EXPECT_TRUE(is_planar(glued.instance.g)) << parts_count << " parts";
  }
}

TEST(Planarity, GlueOfNonPlanarPartsStaysNonPlanar) {
  // Sanity in the other direction: gluing cannot CREATE planarity.
  std::vector<local::Instance> parts;
  parts.push_back(local::make_instance(petersen(),
                                       ident::consecutive(10, 1)));
  parts.push_back(local::make_instance(petersen(),
                                       ident::consecutive(10, 100)));
  const std::vector<NodeId> anchors = {0, 0};
  const core::GluedInstance glued = core::theorem1_glue(parts, anchors);
  EXPECT_FALSE(is_planar(glued.instance.g));
}

TEST(Planarity, LargeRingsAndTreesStayFast) {
  EXPECT_TRUE(is_planar(cycle(20000)));
  EXPECT_TRUE(is_planar(random_tree(20000, 3)));
  EXPECT_TRUE(is_planar(grid(100, 100)));
}

}  // namespace
}  // namespace lnc::graph
