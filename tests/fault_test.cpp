// Fault-model tests: bit-reproducibility of faulty sweeps across thread
// counts, shard layouts, and trial-range slices (every fault draw is a
// pure function of (trial, entity, round) Philox counters, never of
// execution order), plus the trivial-fault invariants that keep specs
// without a fault block byte-identical to the pre-fault path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "scenario/presets.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/spec_json.h"
#include "scenario/sweep.h"
#include "stats/threadpool.h"

namespace {

using namespace lnc;
using scenario::ScenarioSpec;

const char* const kFaultPresets[] = {"ring-amos-drop", "luby-mis-crash",
                                     "rand-matching-churn"};

ScenarioSpec shrunk(const ScenarioSpec& preset, std::uint64_t trials) {
  ScenarioSpec spec = preset;
  spec.trials = trials;
  spec.n_grid = {preset.n_grid.front()};
  return spec;
}

// The fault counter a preset's model is expected to exercise.
std::uint64_t fault_counter(const ScenarioSpec& spec,
                            const local::Telemetry& telemetry) {
  if (spec.fault == "drop") return telemetry.messages_dropped;
  if (spec.fault == "crash") return telemetry.nodes_crashed;
  if (spec.fault == "churn") return telemetry.edges_churned;
  return 0;
}

void expect_rows_bit_identical(const scenario::SweepResult& want,
                               const scenario::SweepResult& got,
                               const std::string& label) {
  ASSERT_EQ(got.rows.size(), want.rows.size()) << label;
  for (std::size_t i = 0; i < want.rows.size(); ++i) {
    EXPECT_EQ(got.rows[i].tally.successes, want.rows[i].tally.successes)
        << label;
    EXPECT_EQ(got.rows[i].tally.trials, want.rows[i].tally.trials) << label;
    EXPECT_TRUE(got.rows[i].tally.value_sum == want.rows[i].tally.value_sum)
        << label;
    EXPECT_TRUE(got.rows[i].tally.value_sum_sq ==
                want.rows[i].tally.value_sum_sq)
        << label;
    EXPECT_TRUE(got.rows[i].tally.telemetry.deterministic_equal(
        want.rows[i].tally.telemetry))
        << label;
    if (want.complete() && got.complete()) {
      const stats::Estimate w = scenario::row_estimate(want.rows[i]);
      const stats::Estimate g = scenario::row_estimate(got.rows[i]);
      EXPECT_EQ(g.p_hat, w.p_hat) << label;
      EXPECT_EQ(g.ci.lo, w.ci.lo) << label;
      EXPECT_EQ(g.ci.hi, w.ci.hi) << label;
    }
  }
}

TEST(FaultRegistry, AllFourModelsAreRegisteredWithSchemas) {
  for (const char* name : {"none", "drop", "crash", "churn"}) {
    const scenario::FaultEntry* entry = scenario::faults().find(name);
    ASSERT_NE(entry, nullptr) << name;
    if (std::string(name) == "none") {
      EXPECT_TRUE(entry->schema.empty());
      EXPECT_TRUE(scenario::make_fault("none", {})->trivial());
    } else {
      EXPECT_FALSE(entry->schema.empty()) << name;
      EXPECT_FALSE(
          scenario::make_fault(name, scenario::merged_params(entry->schema, {}))
              ->trivial())
          << name;
    }
  }
}

TEST(FaultModels, EachPresetIsThreadCountInvariantBitForBit) {
  // The core resilience contract: drop, crash, and churn sweeps produce
  // bit-identical tallies AND fault telemetry at 1 and 8 worker threads,
  // because every fault coin is keyed by (trial, entity, round), never by
  // which thread happened to run the trial.
  const stats::ThreadPool pool(8);
  for (const char* name : kFaultPresets) {
    const ScenarioSpec* preset = scenario::find_preset(name);
    ASSERT_NE(preset, nullptr) << name;
    const ScenarioSpec spec = shrunk(*preset, 48);
    const scenario::CompiledScenario compiled = scenario::compile(spec);
    const scenario::SweepResult sequential = scenario::run_sweep(compiled);
    scenario::SweepOptions pooled;
    pooled.pool = &pool;
    const scenario::SweepResult threaded =
        scenario::run_sweep(compiled, pooled);
    expect_rows_bit_identical(sequential, threaded, name);
    // The preset's fault model actually fired: its counter is nonzero and
    // identical across thread counts.
    const std::uint64_t count =
        fault_counter(spec, sequential.rows[0].tally.telemetry);
    EXPECT_GT(count, 0u) << name;
    EXPECT_EQ(fault_counter(spec, threaded.rows[0].tally.telemetry), count)
        << name;
  }
}

TEST(FaultModels, UnevenThreeWayShardMergeSurvivesJsonRoundTrip) {
  // 10 trials over 3 shards (4/3/3), every shard round-tripped through
  // its JSON wire format: the merge reproduces the unsharded tallies,
  // exact sums, and fault telemetry bit for bit.
  for (const char* name : kFaultPresets) {
    const ScenarioSpec* preset = scenario::find_preset(name);
    ASSERT_NE(preset, nullptr) << name;
    const ScenarioSpec spec = shrunk(*preset, 10);
    const scenario::CompiledScenario compiled = scenario::compile(spec);
    const scenario::SweepResult full = scenario::run_sweep(compiled);

    std::vector<scenario::SweepResult> shards;
    for (unsigned s = 0; s < 3; ++s) {
      scenario::SweepOptions options;
      options.shard = s;
      options.shard_count = 3;
      std::ostringstream os;
      scenario::write_json(os, scenario::run_sweep(compiled, options));
      std::vector<std::string> warnings;
      shards.push_back(scenario::sweep_from_json(os.str(), &warnings));
      EXPECT_TRUE(warnings.empty()) << name << ": " << warnings[0];
    }
    const scenario::SweepResult merged = scenario::merge_sweeps(shards);
    expect_rows_bit_identical(full, merged, name);
  }
}

TEST(FaultModels, TrialRangeSlicesMergeBitIdenticallyWithTheFullRun) {
  // Crash and churn draws depend only on the trial index, not on which
  // trials ran before: three uneven abutting --trial-range slices merge
  // to the full run bit for bit.
  for (const char* name : kFaultPresets) {
    const ScenarioSpec* preset = scenario::find_preset(name);
    ASSERT_NE(preset, nullptr) << name;
    const ScenarioSpec spec = shrunk(*preset, 30);
    const scenario::CompiledScenario compiled = scenario::compile(spec);
    const scenario::SweepResult full = scenario::run_sweep(compiled);

    const std::uint64_t cuts[] = {0, 7, 19, 30};
    std::vector<scenario::SweepResult> parts;
    for (int i = 0; i < 3; ++i) {
      scenario::SweepOptions options;
      options.trial_range = local::TrialRange{cuts[i], cuts[i + 1]};
      parts.push_back(scenario::run_sweep(compiled, options));
    }
    ASSERT_EQ(scenario::can_merge_trial_ranges(parts), "") << name;
    const scenario::SweepResult merged = scenario::merge_trial_ranges(parts);
    expect_rows_bit_identical(full, merged, name);
  }
}

TEST(FaultModels, NoneAndAbsentFaultBlocksAreTheSameScenario) {
  // A spec that never mentions faults and a spec that says fault="none"
  // are the same scenario: identical parsed structs, identical serialized
  // bytes (no "fault" key is ever emitted for the trivial model — the
  // cache-key stability guarantee), and identical sweep results.
  const ScenarioSpec* preset = scenario::find_preset("ring-amos-yes");
  ASSERT_NE(preset, nullptr);
  const ScenarioSpec absent = shrunk(*preset, 16);
  ScenarioSpec explicit_none = absent;
  explicit_none.fault = "none";

  const std::string absent_json = scenario::spec_to_json(absent);
  EXPECT_EQ(scenario::spec_to_json(explicit_none), absent_json);
  EXPECT_EQ(absent_json.find("\"fault\""), std::string::npos);
  const ScenarioSpec reparsed = scenario::spec_from_json(absent_json);
  EXPECT_EQ(reparsed.fault, "none");
  EXPECT_TRUE(reparsed.fault_params.empty());

  const scenario::SweepResult a =
      scenario::run_sweep(scenario::compile(absent));
  const scenario::SweepResult b =
      scenario::run_sweep(scenario::compile(explicit_none));
  expect_rows_bit_identical(a, b, "none-vs-absent");
  // The trivial model leaves the fault counters untouched, so the
  // telemetry JSON stays byte-compatible with pre-fault shard files.
  EXPECT_EQ(a.rows[0].tally.telemetry.messages_dropped, 0u);
  EXPECT_EQ(a.rows[0].tally.telemetry.nodes_crashed, 0u);
  EXPECT_EQ(a.rows[0].tally.telemetry.edges_churned, 0u);
}

TEST(FaultModels, SuccessIsMonotoneNonIncreasingInLossProbability) {
  // Resilience smoke on the amos yes side: stepping p-loss 0 -> 0.25 ->
  // 0.5 can only destroy accepting balls, never create them, so the
  // success count must not increase. (Not exact monotonicity per trial —
  // a statistical smoke over a fixed seed and trial budget.)
  const ScenarioSpec* preset = scenario::find_preset("ring-amos-yes");
  ASSERT_NE(preset, nullptr);
  std::uint64_t previous = 0;
  bool first = true;
  for (const double p_loss : {0.0, 0.25, 0.5}) {
    ScenarioSpec spec = shrunk(*preset, 300);
    spec.fault = "drop";
    spec.fault_params = {{"p-loss", p_loss}};
    ASSERT_EQ(scenario::validate(spec), "") << p_loss;
    const scenario::SweepResult result =
        scenario::run_sweep(scenario::compile(spec));
    const std::uint64_t successes = result.rows[0].tally.successes;
    if (!first) {
      EXPECT_LE(successes, previous) << "p-loss=" << p_loss;
    }
    previous = successes;
    first = false;
  }
  // The sweep actually degraded: at p-loss=0.5 some accepting balls died.
  EXPECT_LT(previous, 300u);
}

}  // namespace
