// Serving-tier tests (src/serve): cache-key canonicalization (the key
// ignores trials/seed/labels/backend and JSON key order, and changes on
// every semantic field), the self-contained SHA-256 against FIPS 180-4
// vectors, ResultStore round trip + corruption/stale-epoch degradation
// to diagnosed misses, trial-range merging, and the SweepService
// contract — miss seeds the cache, repeat hits run zero trials, top-up
// computes only the missing range and is BIT-identical to a cold run,
// concurrent identical queries share one computation — plus the daemon
// protocol via handle_request_line (no sockets needed).
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "local/batch_runner.h"
#include "scenario/presets.h"
#include "scenario/scenario.h"
#include "scenario/spec_json.h"
#include "scenario/sweep.h"
#include "serve/cache_key.h"
#include "serve/daemon.h"
#include "serve/result_store.h"
#include "serve/service.h"
#include "util/build_info.h"
#include "util/file_util.h"

namespace {

using namespace lnc;
using scenario::ScenarioSpec;
using serve::CacheEntry;
using serve::CacheKey;
using serve::CacheOutcome;

ScenarioSpec shrunk(const char* preset_name, std::uint64_t trials,
                    std::uint64_t n) {
  const ScenarioSpec* preset = scenario::find_preset(preset_name);
  EXPECT_NE(preset, nullptr) << preset_name;
  ScenarioSpec spec = *preset;
  spec.trials = trials;
  spec.n_grid = {n};
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("lnc-serve-" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

scenario::SweepResult cold_run(const ScenarioSpec& spec) {
  return scenario::run_sweep(scenario::compile(spec));
}

/// Bit-level row equality: tallies, exact accumulators (canonical hex
/// words), counter slots, deterministic telemetry. Timing excluded.
void expect_rows_bit_identical(const scenario::SweepResult& want,
                               const scenario::SweepResult& got) {
  ASSERT_EQ(want.rows.size(), got.rows.size());
  EXPECT_EQ(want.workload, got.workload);
  for (std::size_t i = 0; i < want.rows.size(); ++i) {
    const local::ShardTally& w = want.rows[i].tally;
    const local::ShardTally& g = got.rows[i].tally;
    EXPECT_EQ(want.rows[i].total_trials, got.rows[i].total_trials);
    EXPECT_EQ(w.trials, g.trials);
    EXPECT_EQ(w.successes, g.successes);
    EXPECT_EQ(w.value_sum.to_hex(), g.value_sum.to_hex());
    EXPECT_EQ(w.value_sum_sq.to_hex(), g.value_sum_sq.to_hex());
    EXPECT_EQ(w.counts, g.counts);
    EXPECT_EQ(w.telemetry.messages_sent, g.telemetry.messages_sent);
    EXPECT_EQ(w.telemetry.words_sent, g.telemetry.words_sent);
    EXPECT_EQ(w.telemetry.rounds_executed, g.telemetry.rounds_executed);
    EXPECT_EQ(w.telemetry.ball_expansions, g.telemetry.ball_expansions);
    EXPECT_EQ(w.telemetry.messages_dropped, g.telemetry.messages_dropped);
    EXPECT_EQ(w.telemetry.nodes_crashed, g.telemetry.nodes_crashed);
    EXPECT_EQ(w.telemetry.edges_churned, g.telemetry.edges_churned);
  }
}

// ------------------------------------------------------------- sha256 --

TEST(Sha256, Fips180KnownAnswers) {
  EXPECT_EQ(serve::sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(serve::sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad");
  // Two-block message (FIPS 180-4 example B.2).
  EXPECT_EQ(serve::sha256_hex(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039"
            "a33ce45964ff2167f6ecedd419db06c1");
  // Padding boundary: 55/56/64-byte messages exercise the one- vs
  // two-block finalization split.
  EXPECT_EQ(serve::sha256_hex(std::string(56, 'a')),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f"
            "590ce20f1bde7090ef7970686ec6738a");
}

// ---------------------------------------------------------- cache key --

TEST(CacheKey, IgnoresNonSemanticFields) {
  const ScenarioSpec base = shrunk("luby-mis-rounds", 100, 64);
  const CacheKey key = serve::cache_key(base);
  EXPECT_EQ(key.size(), 64u);

  ScenarioSpec variant = base;
  variant.trials = 7777;
  EXPECT_EQ(serve::cache_key(variant), key) << "trials must not key";
  variant = base;
  variant.base_seed = 999;
  EXPECT_EQ(serve::cache_key(variant), key) << "seed must not key";
  variant = base;
  variant.name = "renamed";
  variant.doc = "other docs";
  EXPECT_EQ(serve::cache_key(variant), key) << "labels must not key";
  variant = base;
  variant.backend = local::OptimizationConfig::Backend::kNaive;
  EXPECT_EQ(serve::cache_key(variant), key)
      << "backends are bit-identical, so they must not key";
}

TEST(CacheKey, JsonKeyOrderDoesNotMatter) {
  // The same spec spelled with top-level keys in two different orders
  // must produce the same key: canonicalization goes through the parsed
  // (ordered-map) form, not the input bytes.
  const std::string forward =
      "{\"name\": \"a\", \"topology\": \"ring\", \"language\": \"amos\","
      " \"construction\": \"amos-verifier\", \"decider\": \"exact\","
      " \"params\": {\"ids\": 1, \"radius\": 2}, \"workload\": \"success\","
      " \"n\": [16], \"trials\": 10, \"seed\": 3}";
  const std::string reordered =
      "{\"trials\": 99, \"seed\": 42, \"n\": [16],"
      " \"params\": {\"radius\": 2, \"ids\": 1},"
      " \"decider\": \"exact\", \"construction\": \"amos-verifier\","
      " \"language\": \"amos\", \"topology\": \"ring\","
      " \"workload\": \"success\", \"name\": \"b\"}";
  const ScenarioSpec a = scenario::spec_from_json(forward);
  const ScenarioSpec b = scenario::spec_from_json(reordered);
  EXPECT_EQ(serve::cache_key(a), serve::cache_key(b));
}

TEST(CacheKey, SemanticChangesChangeTheKey) {
  const ScenarioSpec base = shrunk("luby-mis-rounds", 100, 64);
  const CacheKey key = serve::cache_key(base);

  ScenarioSpec variant = base;
  variant.params["degree"] = 4;
  EXPECT_NE(serve::cache_key(variant), key) << "param value";
  variant = base;
  variant.params["extra"] = 1;
  EXPECT_NE(serve::cache_key(variant), key) << "param presence";
  variant = base;
  variant.n_grid = {64, 128};
  EXPECT_NE(serve::cache_key(variant), key) << "n grid";
  variant = base;
  variant.statistic = "messages";
  EXPECT_NE(serve::cache_key(variant), key) << "statistic";
  variant = base;
  variant.mode = local::ExecMode::kMessages;
  EXPECT_NE(serve::cache_key(variant), key)
      << "exec mode (telemetry is measured vs modeled)";
  variant = base;
  variant.topology = "ring";
  EXPECT_NE(serve::cache_key(variant), key) << "topology";

  const ScenarioSpec success = shrunk("ring-amos-yes", 100, 16);
  ScenarioSpec flipped = success;
  flipped.success_on_accept = !success.success_on_accept;
  EXPECT_NE(serve::cache_key(flipped), serve::cache_key(success))
      << "success side";
}

TEST(CacheKey, TrivialFaultBlocksDoNotKey) {
  // A spec that never mentions faults, one that says fault="none", and
  // one that says fault="none" with no parameters all canonicalize to the
  // same bytes — pre-fault cache entries stay addressable, byte for byte.
  const ScenarioSpec base = shrunk("ring-amos-yes", 100, 16);
  const CacheKey key = serve::cache_key(base);

  ScenarioSpec variant = base;
  variant.fault = "none";
  EXPECT_EQ(serve::cache_key(variant), key) << "explicit none must not key";

  // Spelling out a non-trivial model's schema default equals omitting
  // it: cache_normal_form materializes defaults before hashing, so
  // `drop` and `drop{p-loss=0.1}` share one cache entry.
  ScenarioSpec defaulted = base;
  defaulted.fault = "drop";
  ScenarioSpec spelled = defaulted;
  spelled.fault_params = {{"p-loss", 0.1}};  // the declared default
  EXPECT_EQ(serve::cache_key(spelled), serve::cache_key(defaulted));
  EXPECT_NE(serve::cache_key(defaulted), key)
      << "a non-trivial fault model must key";
}

TEST(CacheKey, EveryFaultModelAndParamIsKeySensitive) {
  const ScenarioSpec base = shrunk("ring-amos-yes", 100, 16);
  auto with_fault = [&](const char* model, scenario::ParamMap params) {
    ScenarioSpec spec = base;
    spec.fault = model;
    spec.fault_params = std::move(params);
    return serve::cache_key(spec);
  };

  // Distinct models key distinctly.
  const CacheKey drop = with_fault("drop", {{"p-loss", 0.1}});
  const CacheKey crash =
      with_fault("crash", {{"p-crash", 0.05}, {"crash-round", 1}});
  const CacheKey churn = with_fault("churn", {{"p-churn", 0.1}});
  EXPECT_NE(drop, crash);
  EXPECT_NE(drop, churn);
  EXPECT_NE(crash, churn);

  // Every declared parameter is key-sensitive.
  EXPECT_NE(with_fault("drop", {{"p-loss", 0.2}}), drop);
  EXPECT_NE(with_fault("crash", {{"p-crash", 0.1}, {"crash-round", 1}}),
            crash);
  EXPECT_NE(with_fault("crash", {{"p-crash", 0.05}, {"crash-round", 4}}),
            crash);
  EXPECT_NE(with_fault("churn", {{"p-churn", 0.25}}), churn);
}

TEST(CacheKey, PreimageIsVersionedByEpoch) {
  const ScenarioSpec spec = shrunk("ring-amos-yes", 10, 16);
  const std::string preimage = serve::cache_key_preimage(spec);
  const std::string expected_prefix =
      "lnc-cache-v1 epoch=" + std::to_string(util::seed_stream_epoch()) +
      "\n";
  ASSERT_GE(preimage.size(), expected_prefix.size());
  EXPECT_EQ(preimage.substr(0, expected_prefix.size()), expected_prefix);
  EXPECT_EQ(serve::cache_key(spec), serve::sha256_hex(preimage));
}

// --------------------------------------------------------- ResultStore --

TEST(ResultStore, RoundTripsAnEntry) {
  const serve::ResultStore store(fresh_dir("roundtrip"));
  const ScenarioSpec spec = shrunk("luby-mis-rounds", 12, 64);
  CacheEntry entry;
  entry.key = serve::cache_key(spec);
  entry.spec = spec;
  entry.result = cold_run(spec);
  ASSERT_EQ(store.store(entry), "");

  std::string diagnostic;
  const std::optional<CacheEntry> loaded =
      store.lookup(entry.key, &diagnostic);
  ASSERT_TRUE(loaded.has_value()) << diagnostic;
  EXPECT_EQ(loaded->key, entry.key);
  EXPECT_EQ(loaded->seed_stream_epoch, util::seed_stream_epoch());
  EXPECT_EQ(loaded->spec.trials, spec.trials);
  EXPECT_EQ(loaded->spec.base_seed, spec.base_seed);
  expect_rows_bit_identical(entry.result, loaded->result);
}

TEST(ResultStore, MissingEntryIsADiagnosedMiss) {
  const serve::ResultStore store(fresh_dir("absent"));
  std::string diagnostic;
  EXPECT_FALSE(store.lookup(std::string(64, '0'), &diagnostic).has_value());
  EXPECT_EQ(diagnostic, "no entry");
}

TEST(ResultStore, CorruptEntryDegradesToAMiss) {
  const serve::ResultStore store(fresh_dir("corrupt"));
  const ScenarioSpec spec = shrunk("ring-amos-yes", 8, 16);
  const CacheKey key = serve::cache_key(spec);
  ASSERT_EQ(util::write_file_atomic(store.path_for(key), "{ not json"), "");
  std::string diagnostic;
  EXPECT_FALSE(store.lookup(key, &diagnostic).has_value());
  EXPECT_NE(diagnostic, "");
  EXPECT_NE(diagnostic, "no entry");
}

TEST(ResultStore, StaleEpochDegradesToAMiss) {
  const serve::ResultStore store(fresh_dir("epoch"));
  const ScenarioSpec spec = shrunk("ring-amos-yes", 8, 16);
  CacheEntry entry;
  entry.key = serve::cache_key(spec);
  entry.spec = spec;
  entry.result = cold_run(spec);
  ASSERT_EQ(store.store(entry), "");

  // Rewrite the stored entry claiming a different seed-stream epoch —
  // as a binary from another generation would have.
  std::string text;
  ASSERT_EQ(util::read_file(store.path_for(entry.key), text), "");
  const std::string field = "\"seed_stream_epoch\": ";
  const std::size_t at = text.find(field);
  ASSERT_NE(at, std::string::npos);
  std::size_t end = at + field.size();
  while (end < text.size() && std::isdigit(text[end])) ++end;
  text.replace(at + field.size(), end - (at + field.size()), "999");
  ASSERT_EQ(util::write_file_atomic(store.path_for(entry.key), text), "");

  std::string diagnostic;
  EXPECT_FALSE(store.lookup(entry.key, &diagnostic).has_value());
  EXPECT_NE(diagnostic.find("epoch"), std::string::npos) << diagnostic;
}

// --------------------------------------------------- trial-range merge --

TEST(TrialRanges, SplitRunsMergeBitIdentically) {
  const ScenarioSpec spec = shrunk("luby-mis-rounds", 25, 64);
  const scenario::SweepResult whole = cold_run(spec);
  const scenario::CompiledScenario compiled = scenario::compile(spec);

  // Deliberately uneven split points — nothing about the merge depends
  // on near-equal shard_range slices.
  std::vector<scenario::SweepResult> parts;
  const std::uint64_t cuts[] = {0, 3, 4, 20, 25};
  for (int i = 0; i + 1 < 5; ++i) {
    scenario::SweepOptions options;
    options.trial_range = local::TrialRange{cuts[i], cuts[i + 1]};
    parts.push_back(scenario::run_sweep(compiled, options));
  }
  ASSERT_EQ(scenario::can_merge_trial_ranges(parts), "");
  const scenario::SweepResult merged = scenario::merge_trial_ranges(parts);
  EXPECT_EQ(merged.trial_begin, 0u);
  EXPECT_EQ(merged.trial_end, spec.trials);
  EXPECT_TRUE(merged.complete());
  expect_rows_bit_identical(whole, merged);
}

TEST(TrialRanges, GapsAndDisorderAreRejected) {
  const ScenarioSpec spec = shrunk("ring-amos-yes", 20, 16);
  const scenario::CompiledScenario compiled = scenario::compile(spec);
  auto slice = [&](std::uint64_t begin, std::uint64_t end) {
    scenario::SweepOptions options;
    options.trial_range = local::TrialRange{begin, end};
    return scenario::run_sweep(compiled, options);
  };
  const scenario::SweepResult a = slice(0, 8);
  const scenario::SweepResult b = slice(8, 20);
  const scenario::SweepResult late = slice(10, 20);

  EXPECT_EQ(scenario::can_merge_trial_ranges(
                std::vector<scenario::SweepResult>{a, b}),
            "");
  EXPECT_NE(scenario::can_merge_trial_ranges(
                std::vector<scenario::SweepResult>{a, late}),
            "")
      << "a gap [8,10) must not merge";
  EXPECT_NE(scenario::can_merge_trial_ranges(
                std::vector<scenario::SweepResult>{b, a}),
            "")
      << "out-of-order parts must not merge";
  EXPECT_NE(scenario::can_merge_trial_ranges(
                std::vector<scenario::SweepResult>{b}),
            "")
      << "coverage must start at trial 0";
}

// -------------------------------------------------------- SweepService --

TEST(SweepService, MissSeedsTheCacheAndRepeatHits) {
  serve::ServiceOptions options;
  options.threads = 1;
  serve::SweepService service(fresh_dir("misshit"), options);
  const ScenarioSpec spec = shrunk("ring-amos-yes", 16, 16);

  const serve::QueryOutcome first = service.query(spec);
  EXPECT_EQ(first.outcome, CacheOutcome::kMiss);
  EXPECT_EQ(first.trials_computed, 16u);
  EXPECT_EQ(first.trials_reused, 0u);

  const serve::QueryOutcome second = service.query(spec);
  EXPECT_EQ(second.outcome, CacheOutcome::kHit);
  EXPECT_EQ(second.trials_computed, 0u);
  EXPECT_EQ(second.trials_reused, 16u);
  EXPECT_EQ(second.key, first.key);
  expect_rows_bit_identical(first.result, second.result);

  const serve::SweepService::Stats stats = service.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.trials_computed, 16u)
      << "the repeat query must not rerun any trial";
}

TEST(SweepService, TopUpIsBitIdenticalToAColdRun) {
  // The acceptance-criterion property, library-level: miss at T', then
  // query T > T' (computes only [T', T)) == cold run at T, exactly —
  // for a value workload (exact sums + telemetry) and a success one.
  struct Case {
    const char* preset;
    std::uint64_t n;
  };
  for (const Case& c : {Case{"luby-mis-rounds", 64},
                        Case{"ring-amos-yes", 16}}) {
    serve::ServiceOptions options;
    options.threads = 1;
    serve::SweepService service(
        fresh_dir(std::string("topup-") + c.preset), options);

    const ScenarioSpec small = shrunk(c.preset, 11, c.n);
    ScenarioSpec big = small;
    big.trials = 29;

    EXPECT_EQ(service.query(small).outcome, CacheOutcome::kMiss);
    const serve::QueryOutcome topped = service.query(big);
    EXPECT_EQ(topped.outcome, CacheOutcome::kTopUp);
    EXPECT_EQ(topped.trials_reused, 11u);
    EXPECT_EQ(topped.trials_computed, 18u);

    expect_rows_bit_identical(cold_run(big), topped.result);

    // And the topped-up entry serves the next query outright.
    const serve::QueryOutcome again = service.query(big);
    EXPECT_EQ(again.outcome, CacheOutcome::kHit);
    expect_rows_bit_identical(topped.result, again.result);
  }
}

TEST(SweepService, FaultyMissHitAndTopUpAreBitIdentical) {
  // The serving tier treats faulty scenarios like any other: a miss
  // seeds the cache, a repeat query hits without recomputation, and a
  // top-up (computing only the missing trial range) is bit-identical to
  // a cold run — fault telemetry included. Works because fault coins are
  // pure functions of the trial index, never of the cached prefix.
  struct Case {
    const char* preset;
    std::uint64_t n;
  };
  for (const Case& c : {Case{"ring-amos-drop", 16}, Case{"luby-mis-crash", 64},
                        Case{"rand-matching-churn", 64}}) {
    serve::ServiceOptions options;
    options.threads = 1;
    serve::SweepService service(
        fresh_dir(std::string("fault-topup-") + c.preset), options);

    const ScenarioSpec small = shrunk(c.preset, 11, c.n);
    ScenarioSpec big = small;
    big.trials = 29;

    EXPECT_EQ(service.query(small).outcome, CacheOutcome::kMiss) << c.preset;
    const serve::QueryOutcome repeat = service.query(small);
    EXPECT_EQ(repeat.outcome, CacheOutcome::kHit) << c.preset;
    EXPECT_EQ(repeat.trials_computed, 0u) << c.preset;

    const serve::QueryOutcome topped = service.query(big);
    EXPECT_EQ(topped.outcome, CacheOutcome::kTopUp) << c.preset;
    EXPECT_EQ(topped.trials_reused, 11u) << c.preset;
    EXPECT_EQ(topped.trials_computed, 18u) << c.preset;
    expect_rows_bit_identical(cold_run(big), topped.result);

    const local::Telemetry& telemetry = topped.result.rows[0].tally.telemetry;
    EXPECT_GT(telemetry.messages_dropped + telemetry.nodes_crashed +
                  telemetry.edges_churned,
              0u)
        << c.preset << ": the fault model never fired";
  }
}

TEST(SweepService, EntrySeedIsCanonical) {
  serve::ServiceOptions options;
  options.threads = 1;
  serve::SweepService service(fresh_dir("seed"), options);
  ScenarioSpec spec = shrunk("ring-amos-yes", 12, 16);
  spec.base_seed = 101;
  EXPECT_EQ(service.query(spec).outcome, CacheOutcome::kMiss);

  ScenarioSpec other_seed = spec;
  other_seed.base_seed = 202;
  const serve::QueryOutcome served = service.query(other_seed);
  EXPECT_EQ(served.outcome, CacheOutcome::kHit)
      << "the key excludes the seed";
  EXPECT_TRUE(served.seed_differs);
  EXPECT_EQ(served.served_seed, 101u) << "first writer's seed wins";
  EXPECT_EQ(served.result.base_seed, 101u);
}

TEST(SweepService, ConcurrentIdenticalQueriesShareOneComputation) {
  serve::ServiceOptions options;
  options.threads = 1;
  serve::SweepService service(fresh_dir("dedup"), options);
  const ScenarioSpec spec = shrunk("luby-mis-rounds", 14, 64);

  serve::QueryOutcome a, b;
  std::thread ta([&] { a = service.query(spec); });
  std::thread tb([&] { b = service.query(spec); });
  ta.join();
  tb.join();

  // The per-key lock serializes them: exactly one computes, the other
  // finds the fresh entry and hits.
  const serve::SweepService::Stats stats = service.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.trials_computed, 14u);
  expect_rows_bit_identical(a.result, b.result);
}

// ------------------------------------------------------ wire protocol --

TEST(DaemonProtocol, AnswersAndCachesRequests) {
  serve::ServiceOptions options;
  options.threads = 1;
  serve::SweepService service(fresh_dir("protocol"), options);

  const std::string request =
      "{\"scenario\": \"ring-amos-yes\", \"trials\": 8, \"n\": [16]}";
  const std::string first = serve::handle_request_line(service, request);
  EXPECT_NE(first.find("\"status\": \"ok\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"outcome\": \"miss\""), std::string::npos);
  EXPECT_NE(first.find("\"seed_stream_epoch\": "), std::string::npos);
  EXPECT_EQ(first.find('\n'), first.size() - 1)
      << "exactly one newline-terminated line";

  const std::string second = serve::handle_request_line(service, request);
  EXPECT_NE(second.find("\"outcome\": \"hit\""), std::string::npos)
      << second;
  EXPECT_NE(second.find("\"trials_computed\": 0"), std::string::npos);
}

TEST(DaemonProtocol, RejectsBadRequestsWithoutDying) {
  serve::ServiceOptions options;
  options.threads = 1;
  serve::SweepService service(fresh_dir("badreq"), options);
  for (const char* bad : {
           "not json at all",
           "{\"scenario\": \"no-such-preset\"}",
           "{\"scenario\": \"ring-amos-yes\", \"bogus\": 1}",
           "{}",
           "{\"scenario\": \"ring-amos-yes\", \"spec\": {}}",
       }) {
    const std::string response = serve::handle_request_line(service, bad);
    EXPECT_NE(response.find("\"status\": \"error\""), std::string::npos)
        << bad << " -> " << response;
  }
  EXPECT_EQ(service.stats().trials_computed, 0u);
}

}  // namespace
