// Tests for src/ident: identity assignments and order patterns.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ident/identity.h"
#include "ident/order.h"

namespace lnc::ident {
namespace {

TEST(Identity, ConsecutiveAssignment) {
  const IdAssignment ids = consecutive(5, 10);
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids[0], 10u);
  EXPECT_EQ(ids[4], 14u);
  EXPECT_EQ(ids.min_identity(), 10u);
  EXPECT_EQ(ids.max_identity(), 14u);
  EXPECT_EQ(ids.index_of(12), 2u);
  EXPECT_EQ(ids.index_of(99), graph::kInvalidNode);
}

TEST(Identity, ShiftedPreservesOrder) {
  const IdAssignment ids = consecutive(4, 1);
  const IdAssignment shifted = ids.shifted(100);
  EXPECT_EQ(shifted[0], 101u);
  EXPECT_TRUE(same_order(ids.raw(), shifted.raw()));
}

TEST(Identity, RandomPermutationIsPermutation) {
  const IdAssignment ids = random_permutation(20, 42, 5);
  std::set<Identity> seen(ids.raw().begin(), ids.raw().end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 5u);
  EXPECT_EQ(*seen.rbegin(), 24u);
}

TEST(Identity, RandomPermutationVariesWithSeed) {
  const IdAssignment a = random_permutation(20, 1);
  const IdAssignment b = random_permutation(20, 2);
  EXPECT_NE(a.raw(), b.raw());
  const IdAssignment c = random_permutation(20, 1);
  EXPECT_EQ(a.raw(), c.raw());  // deterministic in seed
}

TEST(Identity, RandomSparseDistinctAndInRange) {
  const IdAssignment ids = random_sparse(30, 1000, 100000, 3);
  std::set<Identity> seen;
  for (Identity id : ids.raw()) {
    EXPECT_GE(id, 1000u);
    EXPECT_LE(id, 100000u);
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(Order, RankPattern) {
  const std::vector<Identity> values = {30, 10, 20};
  const auto ranks = rank_pattern(values);
  EXPECT_EQ(ranks, (std::vector<std::size_t>{2, 0, 1}));
}

TEST(Order, SameOrderDetection) {
  const std::vector<Identity> a = {5, 1, 3};
  const std::vector<Identity> b = {500, 10, 42};
  const std::vector<Identity> c = {1, 5, 3};
  EXPECT_TRUE(same_order(a, b));
  EXPECT_FALSE(same_order(a, c));
  EXPECT_FALSE(same_order(a, std::vector<Identity>{1, 2}));
}

TEST(Order, CanonicalRanksAreOneBasedRanks) {
  const std::vector<Identity> values = {100, 7, 55};
  const auto canonical = canonical_ranks(values);
  EXPECT_EQ(canonical, (std::vector<Identity>{3, 1, 2}));
  EXPECT_TRUE(same_order(values, canonical));
}

TEST(Order, OrderPreservingRemapKeepsOrder) {
  const std::vector<Identity> values = {12, 4, 900, 33};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto remapped = order_preserving_remap(values, 1u << 16, seed);
    EXPECT_TRUE(same_order(values, remapped));
    std::set<Identity> distinct(remapped.begin(), remapped.end());
    EXPECT_EQ(distinct.size(), values.size());
    for (Identity id : remapped) {
      EXPECT_GE(id, 1u);
      EXPECT_LE(id, 1u << 16);
    }
  }
}

TEST(Order, OrderPreservingRemapTightCeiling) {
  // ceiling == n forces the identity map onto {1..n}.
  const std::vector<Identity> values = {50, 10, 30};
  const auto remapped = order_preserving_remap(values, 3, 1);
  EXPECT_EQ(remapped, (std::vector<Identity>{3, 1, 2}));
}

TEST(Order, CanonicalizeAssignment) {
  const IdAssignment ids({40, 10, 25});
  const IdAssignment canonical = canonicalize(ids);
  EXPECT_EQ(canonical[0], 3u);
  EXPECT_EQ(canonical[1], 1u);
  EXPECT_EQ(canonical[2], 2u);
}

}  // namespace
}  // namespace lnc::ident
