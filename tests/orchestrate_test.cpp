// Distributed sweep orchestrator tests (src/orchestrate): manifest JSON
// round trip and corruption handling, supervisor retry / permanent
// failure / straggler timeout, resume-after-kill re-running exactly the
// unfinished shards, spec serialization for job handoff, and the
// end-to-end contract — a LocalProcessTransport fleet of real lnc_sweep
// processes merges BIT FOR BIT to the in-process unsharded run, for a
// success and a value preset.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "orchestrate/launch.h"
#include "orchestrate/manifest.h"
#include "orchestrate/supervisor.h"
#include "orchestrate/transport.h"
#include "scenario/presets.h"
#include "scenario/scenario.h"
#include "scenario/spec_json.h"
#include "scenario/sweep.h"

namespace {

using namespace lnc;
using orchestrate::RunManifest;
using orchestrate::ShardState;
using scenario::ScenarioSpec;

const char* kSweepBinary = LNC_BINARY_DIR "/lnc_sweep";

ScenarioSpec shrunk(const char* preset_name, std::uint64_t trials,
                    std::uint64_t n) {
  const ScenarioSpec* preset = scenario::find_preset(preset_name);
  EXPECT_NE(preset, nullptr) << preset_name;
  ScenarioSpec spec = *preset;
  spec.trials = trials;
  spec.n_grid = {n};
  return spec;
}

/// A fresh directory under the test temp root (removed first, so reruns
/// of the suite start clean).
std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("lnc-orch-" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// The unsharded in-process reference for a spec.
scenario::SweepResult reference_run(const ScenarioSpec& spec) {
  return scenario::run_sweep(scenario::compile(spec));
}

/// Bit-level row equality: tallies, exact accumulators (via their
/// canonical hex words), counter slots, and the deterministic telemetry
/// counters. Timing fields are machine-dependent and excluded.
void expect_rows_bit_identical(const scenario::SweepResult& want,
                               const scenario::SweepResult& got) {
  ASSERT_EQ(want.rows.size(), got.rows.size());
  EXPECT_EQ(want.workload, got.workload);
  for (std::size_t i = 0; i < want.rows.size(); ++i) {
    const local::ShardTally& w = want.rows[i].tally;
    const local::ShardTally& g = got.rows[i].tally;
    EXPECT_EQ(w.trials, g.trials);
    EXPECT_EQ(w.successes, g.successes);
    EXPECT_EQ(w.value_sum.to_hex(), g.value_sum.to_hex());
    EXPECT_EQ(w.value_sum_sq.to_hex(), g.value_sum_sq.to_hex());
    EXPECT_EQ(w.counts, g.counts);
    EXPECT_EQ(w.telemetry.messages_sent, g.telemetry.messages_sent);
    EXPECT_EQ(w.telemetry.words_sent, g.telemetry.words_sent);
    EXPECT_EQ(w.telemetry.rounds_executed, g.telemetry.rounds_executed);
    EXPECT_EQ(w.telemetry.ball_expansions, g.telemetry.ball_expansions);
  }
}

orchestrate::SupervisorOptions quiet_supervisor() {
  orchestrate::SupervisorOptions options;
  options.backoff_ms = 1;  // tests should not sleep for real
  return options;
}

TEST(Manifest, JsonRoundTripPreservesEveryField) {
  RunManifest manifest = orchestrate::make_manifest("/tmp/x", "demo", 3);
  manifest.shards[0].state = ShardState::kDone;
  manifest.shards[0].attempts = 1;
  manifest.shards[1].state = ShardState::kFailed;
  manifest.shards[1].attempts = 4;
  manifest.shards[1].exit_code = 99;
  // Quotes, backslashes, and every control character the escaper names —
  // recorded errors come from arbitrary process output and must survive
  // the save/load round trip (a failed round trip bricks --resume).
  manifest.shards[1].error = "injected \"failure\"\\ \r\n\t\b\f\x01 end";
  manifest.shards[2].state = ShardState::kRunning;
  manifest.shards[2].attempts = 2;
  manifest.shards[2].exit_code = -1;

  const RunManifest parsed = orchestrate::manifest_from_json(
      orchestrate::manifest_to_json(manifest), "/tmp/y");
  EXPECT_EQ(parsed.run_dir, "/tmp/y");  // run_dir is caller-supplied
  EXPECT_EQ(parsed.scenario, "demo");
  EXPECT_EQ(parsed.spec_file, "spec.json");
  EXPECT_EQ(parsed.shard_count, 3u);
  ASSERT_EQ(parsed.shards.size(), 3u);
  for (unsigned shard = 0; shard < 3; ++shard) {
    const orchestrate::ShardRecord& want = manifest.shards[shard];
    const orchestrate::ShardRecord& got = parsed.shards[shard];
    EXPECT_EQ(got.shard, shard);
    EXPECT_EQ(got.state, want.state);
    EXPECT_EQ(got.attempts, want.attempts);
    EXPECT_EQ(got.output, want.output);
    EXPECT_EQ(got.exit_code, want.exit_code);
    EXPECT_EQ(got.error, want.error);
  }
}

TEST(Manifest, SaveLoadRoundTripsThroughTheRunDirectory) {
  const std::string dir = fresh_dir("manifest-io");
  std::filesystem::create_directories(dir);
  RunManifest manifest = orchestrate::make_manifest(dir, "io-demo", 2);
  manifest.shards[1].state = ShardState::kDone;
  orchestrate::save_manifest(manifest);
  // Atomic save leaves no tmp file behind.
  EXPECT_FALSE(
      std::filesystem::exists(manifest.manifest_path() + ".tmp"));

  const RunManifest loaded = orchestrate::load_manifest(dir);
  EXPECT_EQ(loaded.scenario, "io-demo");
  EXPECT_EQ(loaded.shards[1].state, ShardState::kDone);
  EXPECT_EQ(loaded.output_path(0), dir + "/shard-0.json");
}

TEST(Manifest, RejectsCorruptInput) {
  EXPECT_THROW(orchestrate::load_manifest(fresh_dir("missing")),
               std::runtime_error);
  // Bad state tag.
  EXPECT_THROW(
      orchestrate::manifest_from_json(
          R"({"scenario": "x", "spec_file": "spec.json", "shard_count": 1,
              "shards": [{"shard": 0, "state": "exploded", "attempts": 0,
                          "output": "shard-0.json"}]})",
          "/tmp/x"),
      std::runtime_error);
  // Shard index out of range.
  EXPECT_THROW(
      orchestrate::manifest_from_json(
          R"({"scenario": "x", "spec_file": "spec.json", "shard_count": 1,
              "shards": [{"shard": 5, "state": "pending", "attempts": 0,
                          "output": "shard-5.json"}]})",
          "/tmp/x"),
      std::runtime_error);
  // Declared count disagrees with the shard list.
  EXPECT_THROW(
      orchestrate::manifest_from_json(
          R"({"scenario": "x", "spec_file": "spec.json", "shard_count": 2,
              "shards": []})",
          "/tmp/x"),
      std::runtime_error);
}

TEST(SpecJson, SpecRoundTripsFieldForField) {
  ScenarioSpec spec = shrunk("gnp-weak-coloring-quality", 40, 48);
  spec.params["edge-prob"] = 0.1;  // not representable — full precision
  spec.base_seed = 18446744073709551615ull;  // 2^64 - 1 survives
  const ScenarioSpec parsed =
      scenario::spec_from_json(scenario::spec_to_json(spec));
  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.doc, spec.doc);
  EXPECT_EQ(parsed.topology, spec.topology);
  EXPECT_EQ(parsed.language, spec.language);
  EXPECT_EQ(parsed.construction, spec.construction);
  EXPECT_EQ(parsed.decider, spec.decider);
  EXPECT_EQ(parsed.params, spec.params);  // bit-exact doubles
  EXPECT_EQ(parsed.workload, spec.workload);
  EXPECT_EQ(parsed.statistic, spec.statistic);
  EXPECT_EQ(parsed.n_grid, spec.n_grid);
  EXPECT_EQ(parsed.trials, spec.trials);
  EXPECT_EQ(parsed.base_seed, spec.base_seed);
  EXPECT_EQ(parsed.success_on_accept, spec.success_on_accept);
  EXPECT_EQ(parsed.mode, spec.mode);
  EXPECT_EQ(scenario::validate(parsed), "");
}

TEST(Transport, TemplateRenderingQuotesAndSubstitutes) {
  orchestrate::ShardJob job;
  job.shard = 2;
  job.shard_count = 5;
  job.spec_path = "/run/spec.json";
  job.output_path = "/run/shard-2.json";

  // Arguments are emitted BARE — quoting cannot survive the template's
  // unknown number of shell evaluations (sh, then maybe ssh's remote
  // shell), so shell-safety is required instead.
  const std::string rendered = orchestrate::render_template(
      "ssh worker{shard} {cmd}", "lnc_sweep", job);
  EXPECT_EQ(rendered,
            "ssh worker2 lnc_sweep --spec /run/spec.json --shard 2/5 "
            "--out /run/shard-2.json");

  // No {cmd}: the command is appended.
  EXPECT_EQ(orchestrate::render_template("srun -N1", "lnc_sweep", job)
                .substr(0, 9),
            "srun -N1 ");

  // A path the shells would mangle is rejected up front with a clear
  // error, not silently word-split on some remote host.
  orchestrate::ShardJob unsafe = job;
  unsafe.spec_path = "/run dir/spec.json";
  EXPECT_THROW(orchestrate::render_template("ssh w{shard} {cmd}",
                                            "lnc_sweep", unsafe),
               std::runtime_error);

  // Embedded single quotes survive POSIX quoting (one-level helper).
  EXPECT_EQ(orchestrate::shell_quote("a'b"), "'a'\\''b'");
}

TEST(Supervisor, InjectedFailureRetriesThenSucceeds) {
  const ScenarioSpec spec = shrunk("ring-amos-yes", 16, 16);
  const std::string dir = fresh_dir("retry");
  RunManifest manifest = orchestrate::plan_run(spec, dir, 2);

  orchestrate::LocalProcessTransport local(kSweepBinary);
  orchestrate::FaultInjectingTransport flaky(local, /*shard=*/1,
                                             /*times=*/1);
  const orchestrate::LaunchOutcome outcome = orchestrate::execute_run(
      manifest, flaky, quiet_supervisor());
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(manifest.shards[0].attempts, 1u);
  EXPECT_EQ(manifest.shards[1].attempts, 2u);  // one injected failure
  EXPECT_EQ(manifest.shards[1].state, ShardState::kDone);
  expect_rows_bit_identical(reference_run(spec), outcome.merged);
}

TEST(Supervisor, ExhaustedRetriesReportPermanentFailure) {
  const ScenarioSpec spec = shrunk("ring-amos-yes", 8, 16);
  const std::string dir = fresh_dir("permfail");
  RunManifest manifest = orchestrate::plan_run(spec, dir, 2);

  orchestrate::LocalProcessTransport local(kSweepBinary);
  orchestrate::FaultInjectingTransport broken(local, /*shard=*/0,
                                              /*times=*/100);
  orchestrate::SupervisorOptions options = quiet_supervisor();
  options.max_attempts = 2;
  const orchestrate::LaunchOutcome outcome =
      orchestrate::execute_run(manifest, broken, options);
  EXPECT_FALSE(outcome.ok);
  ASSERT_EQ(outcome.failed_shards.size(), 1u);
  EXPECT_EQ(outcome.failed_shards[0], 0u);
  EXPECT_EQ(manifest.shards[0].state, ShardState::kFailed);
  EXPECT_EQ(manifest.shards[0].attempts, 2u);
  EXPECT_EQ(manifest.shards[0].exit_code, 99);
  EXPECT_NE(manifest.shards[0].error.find("injected"), std::string::npos);
  // The healthy shard still landed — failures never poison the merge,
  // they just keep it from happening.
  EXPECT_EQ(manifest.shards[1].state, ShardState::kDone);
  // The saved manifest reflects the failure for --resume.
  const RunManifest reloaded = orchestrate::load_manifest(dir);
  EXPECT_EQ(reloaded.shards[0].state, ShardState::kFailed);
}

TEST(Supervisor, StragglersAreKilledAtTheDeadline) {
  const ScenarioSpec spec = shrunk("ring-amos-yes", 8, 16);
  const std::string dir = fresh_dir("straggler");
  RunManifest manifest = orchestrate::plan_run(spec, dir, 1);

  // A transport whose every job hangs far past the deadline.
  orchestrate::SshTransport hang("sleep 30 && true {cmd}");
  orchestrate::SupervisorOptions options = quiet_supervisor();
  options.max_attempts = 1;
  options.timeout_seconds = 0.2;
  const orchestrate::LaunchOutcome outcome =
      orchestrate::execute_run(manifest, hang, options);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(manifest.shards[0].state, ShardState::kFailed);
  EXPECT_NE(manifest.shards[0].error.find("timed out"), std::string::npos);
}

TEST(Resume, RerunsExactlyTheUnfinishedShards) {
  const ScenarioSpec spec = shrunk("luby-mis-rounds", 12, 32);
  const scenario::SweepResult reference = reference_run(spec);
  const std::string dir = fresh_dir("resume");
  orchestrate::LocalProcessTransport local(kSweepBinary);

  {
    RunManifest manifest = orchestrate::plan_run(spec, dir, 3);
    const orchestrate::LaunchOutcome outcome =
        orchestrate::execute_run(manifest, local, quiet_supervisor());
    ASSERT_TRUE(outcome.ok) << outcome.error;
  }

  // Simulate a killed coordinator: shard 1 recorded failed, shard 2
  // recorded done but its output file is gone.
  RunManifest crashed = orchestrate::load_manifest(dir);
  crashed.shards[1].state = ShardState::kFailed;
  crashed.shards[1].error = "simulated crash";
  orchestrate::save_manifest(crashed);
  std::filesystem::remove(crashed.output_path(2));

  RunManifest resumed = orchestrate::load_manifest(dir);
  const orchestrate::LaunchOutcome outcome =
      orchestrate::execute_run(resumed, local, quiet_supervisor());
  ASSERT_TRUE(outcome.ok) << outcome.error;
  // Shard 0 was left alone; 1 and 2 re-ran exactly once more.
  EXPECT_EQ(resumed.shards[0].attempts, 1u);
  EXPECT_EQ(resumed.shards[1].attempts, 2u);
  EXPECT_EQ(resumed.shards[2].attempts, 2u);
  expect_rows_bit_identical(reference, outcome.merged);
}

TEST(Resume, PlanRefusesToClobberAnExistingRun) {
  const ScenarioSpec spec = shrunk("ring-amos-yes", 8, 16);
  const std::string dir = fresh_dir("clobber");
  orchestrate::plan_run(spec, dir, 2);
  EXPECT_THROW(orchestrate::plan_run(spec, dir, 2), std::runtime_error);
}

TEST(EndToEnd, SuccessPresetMergesBitIdenticalToUnsharded) {
  const ScenarioSpec spec = shrunk("ring-amos-yes", 24, 16);
  const std::string dir = fresh_dir("e2e-success");
  RunManifest manifest = orchestrate::plan_run(spec, dir, 3);
  orchestrate::LocalProcessTransport local(kSweepBinary);
  const orchestrate::LaunchOutcome outcome =
      orchestrate::execute_run(manifest, local, quiet_supervisor());
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.merged.complete());
  expect_rows_bit_identical(reference_run(spec), outcome.merged);
}

TEST(EndToEnd, ValuePresetMergesBitIdenticalToUnsharded) {
  const ScenarioSpec spec = shrunk("luby-mis-rounds", 18, 32);
  const std::string dir = fresh_dir("e2e-value");
  RunManifest manifest = orchestrate::plan_run(spec, dir, 3);
  orchestrate::LocalProcessTransport local(kSweepBinary);
  const orchestrate::LaunchOutcome outcome =
      orchestrate::execute_run(manifest, local, quiet_supervisor());
  ASSERT_TRUE(outcome.ok) << outcome.error;
  expect_rows_bit_identical(reference_run(spec), outcome.merged);
  // The merged mean/stddev equal the in-process run's doubles exactly.
  const stats::MeanEstimate want = scenario::row_mean(
      reference_run(spec).rows[0]);
  const stats::MeanEstimate got = scenario::row_mean(outcome.merged.rows[0]);
  EXPECT_EQ(want.mean, got.mean);
  EXPECT_EQ(want.stddev, got.stddev);
}

TEST(Manifest, TrialRangeRoundTripsAndStaysOptional) {
  RunManifest manifest = orchestrate::make_manifest("/tmp/x", "demo", 2);
  // Classic manifests must not grow range keys: older binaries resume
  // them, and byte-stable JSON is the compatibility contract.
  EXPECT_EQ(orchestrate::manifest_to_json(manifest).find("trial_begin"),
            std::string::npos);
  EXPECT_FALSE(manifest.is_topup());

  manifest.trial_begin = 30;
  manifest.trial_end = 80;
  const RunManifest parsed = orchestrate::manifest_from_json(
      orchestrate::manifest_to_json(manifest), "/tmp/x");
  EXPECT_TRUE(parsed.is_topup());
  EXPECT_EQ(parsed.trial_begin, 30u);
  EXPECT_EQ(parsed.trial_end, 80u);
  EXPECT_EQ(parsed.baseline_path(), "/tmp/x/baseline.json");
}

TEST(EndToEnd, TopUpFleetMergesBitIdenticalToColdRun) {
  // A cached 14-trial baseline + a 3-shard fleet over trials [14, 40)
  // must reassemble the exact cold 40-trial result — the cache tier's
  // acceptance property at the orchestrator level.
  ScenarioSpec small = shrunk("luby-mis-rounds", 14, 32);
  ScenarioSpec big = small;
  big.trials = 40;
  const scenario::SweepResult baseline = reference_run(small);

  const std::string dir = fresh_dir("e2e-topup");
  RunManifest manifest = orchestrate::plan_topup_run(big, dir, 3, baseline);
  EXPECT_TRUE(manifest.is_topup());
  EXPECT_EQ(manifest.trial_begin, 14u);
  EXPECT_EQ(manifest.trial_end, 40u);
  ASSERT_TRUE(std::filesystem::exists(manifest.baseline_path()));

  orchestrate::LocalProcessTransport local(kSweepBinary);
  const orchestrate::LaunchOutcome outcome =
      orchestrate::execute_run(manifest, local, quiet_supervisor());
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.merged.complete());
  EXPECT_EQ(outcome.merged.trial_end, 40u);
  expect_rows_bit_identical(reference_run(big), outcome.merged);
}

TEST(EndToEnd, TopUpPlanningRejectsBadBaselines) {
  ScenarioSpec small = shrunk("ring-amos-yes", 10, 16);
  const scenario::SweepResult baseline = reference_run(small);
  // Nothing to top up: the baseline already covers the request.
  EXPECT_THROW(orchestrate::plan_topup_run(small, fresh_dir("topup-none"),
                                           1, baseline),
               std::runtime_error);
  // More shards than missing trials would degrade an empty slice into a
  // full-width job — must be refused outright.
  ScenarioSpec big = small;
  big.trials = 12;
  EXPECT_THROW(orchestrate::plan_topup_run(big, fresh_dir("topup-wide"),
                                           3, baseline),
               std::runtime_error);
}

}  // namespace
