// Tests for src/graph: CSR construction, generators, balls (the paper's
// exact edge rule), ops, and metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "graph/ball.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "graph/ops.h"

namespace lnc::graph {
namespace {

TEST(Graph, BuilderDeduplicatesAndSorts) {
  Graph::Builder b;
  b.add_edge(2, 0).add_edge(0, 2).add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  ASSERT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.neighbors(2)[0], 0u);
  EXPECT_EQ(g.neighbors(2)[1], 1u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, IsolatedNodesSurvive) {
  Graph::Builder b(5);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(Generators, CycleStructure) {
  const Graph g = cycle(7);
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.edge_count(), 7u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.min_degree(), 2u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 3);
  EXPECT_EQ(girth(g), 7);
  EXPECT_FALSE(is_bipartite(g));     // odd cycle
  EXPECT_TRUE(is_bipartite(cycle(8)));
}

TEST(Generators, PathAndStar) {
  const Graph p = path(5);
  EXPECT_EQ(p.edge_count(), 4u);
  EXPECT_EQ(diameter(p), 4);
  EXPECT_EQ(girth(p), -1);  // forest

  const Graph s = star(6);
  EXPECT_EQ(s.degree(0), 5u);
  EXPECT_EQ(diameter(s), 2);
}

TEST(Generators, CompleteGraph) {
  const Graph g = complete(6);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(g.min_degree(), 5u);
  EXPECT_EQ(diameter(g), 1);
  EXPECT_EQ(girth(g), 3);
}

TEST(Generators, GridAndTorus) {
  const Graph g = grid(4, 3);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 4u * 2 + 3u * 3);  // 3 rows x 3 + 4 cols x 2
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_TRUE(is_bipartite(g));

  const Graph t = torus(4, 4);
  EXPECT_EQ(t.node_count(), 16u);
  EXPECT_EQ(t.min_degree(), 4u);
  EXPECT_EQ(t.max_degree(), 4u);
  EXPECT_EQ(t.edge_count(), 32u);
}

TEST(Generators, Hypercube) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.min_degree(), 4u);
  EXPECT_EQ(diameter(g), 4);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, BinaryTreeAndCaterpillar) {
  const Graph t = binary_tree(15);
  EXPECT_EQ(t.edge_count(), 14u);
  EXPECT_EQ(girth(t), -1);
  EXPECT_TRUE(is_connected(t));

  const Graph c = caterpillar(4, 2);
  EXPECT_EQ(c.node_count(), 12u);
  EXPECT_EQ(c.edge_count(), 11u);
  EXPECT_TRUE(is_connected(c));
}

TEST(Generators, Petersen) {
  const Graph g = petersen();
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(g.min_degree(), 3u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(girth(g), 5);
  EXPECT_EQ(diameter(g), 2);
}

TEST(Generators, RandomRegularIsRegularAndSimple) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph g = random_regular(24, 3, seed);
    EXPECT_EQ(g.node_count(), 24u);
    EXPECT_EQ(g.min_degree(), 3u);
    EXPECT_EQ(g.max_degree(), 3u);
  }
}

TEST(Generators, GnpBoundedRespectsCap) {
  const Graph g = gnp_bounded(60, 0.2, 4, 7);
  EXPECT_LE(g.max_degree(), 4u);
  EXPECT_EQ(g.node_count(), 60u);
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed : {11ull, 12ull}) {
    const Graph g = random_tree(40, seed);
    EXPECT_EQ(g.edge_count(), 39u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomTreeBoundedRespectsDegree) {
  const Graph g = random_tree_bounded(50, 3, 5);
  EXPECT_EQ(g.edge_count(), 49u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_LE(g.max_degree(), 3u);
}

TEST(Ball, RadiusZeroIsJustTheCenter) {
  const Graph g = cycle(9);
  const BallView ball(g, 4, 0);
  EXPECT_EQ(ball.size(), 1u);
  EXPECT_EQ(ball.to_original(0), 4u);
  EXPECT_TRUE(ball.neighbors(0).empty());
}

TEST(Ball, PaperEdgeRuleOnCycle) {
  // B(v, t) on a cycle: path of 2t+1 nodes; the two distance-t endpoints
  // keep only their edge toward distance t-1.
  const Graph g = cycle(11);
  const BallView ball(g, 5, 2);
  EXPECT_EQ(ball.size(), 5u);
  int boundary_nodes = 0;
  for (NodeId i = 0; i < ball.size(); ++i) {
    if (ball.distance(i) == 2) {
      ++boundary_nodes;
      EXPECT_EQ(ball.degree_in_ball(i), 1u);
      EXPECT_EQ(ball.host_degree(i), 2u);
    }
  }
  EXPECT_EQ(boundary_nodes, 2);
}

TEST(Ball, BoundaryEdgesExcludedOnCompleteGraph) {
  // In K_5, B(v, 1) contains all nodes; the 4 boundary nodes are pairwise
  // adjacent in the host but those edges are NOT part of the ball.
  const Graph g = complete(5);
  const BallView ball(g, 0, 1);
  EXPECT_EQ(ball.size(), 5u);
  for (NodeId i = 1; i < ball.size(); ++i) {
    EXPECT_EQ(ball.distance(i), 1);
    ASSERT_EQ(ball.degree_in_ball(i), 1u);
    EXPECT_EQ(ball.neighbors(i)[0], 0u);  // only the center
  }
  EXPECT_EQ(ball.degree_in_ball(0), 4u);
}

TEST(Ball, InteriorEdgesKept) {
  // Triangle edge between two distance-1 nodes in a radius-2 ball stays.
  Graph::Builder b;
  b.add_edge(0, 1).add_edge(0, 2).add_edge(1, 2).add_edge(1, 3);
  const Graph g = b.build();
  const BallView ball(g, 0, 2);
  // Locals: 0 -> center; find locals of 1 and 2.
  NodeId l1 = kInvalidNode;
  NodeId l2 = kInvalidNode;
  for (NodeId i = 0; i < ball.size(); ++i) {
    if (ball.to_original(i) == 1) l1 = i;
    if (ball.to_original(i) == 2) l2 = i;
  }
  ASSERT_NE(l1, kInvalidNode);
  ASSERT_NE(l2, kInvalidNode);
  const auto nbrs = ball.neighbors(l1);
  EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), l2) != nbrs.end());
}

TEST(Ball, SignatureDistinguishesStructures) {
  const Graph c = cycle(9);
  const Graph p = path(9);
  const BallView b1(c, 4, 2);
  const BallView b2(p, 4, 2);  // interior of path: same as cycle ball
  const BallView b3(p, 0, 2);  // endpoint: different structure
  EXPECT_EQ(b1.structure_signature(), b2.structure_signature());
  EXPECT_NE(b1.structure_signature(), b3.structure_signature());
}

TEST(Ball, ScratchReuseIsBitIdenticalToFreshConstruction) {
  // One workspace re-collected across graphs of different sizes, centers,
  // and radii must reproduce the freshly constructed ball exactly — the
  // contract that lets the Monte-Carlo runners keep a per-worker scratch
  // warm across trials.
  const Graph graphs[] = {cycle(17), path(9), complete(6), grid(4, 5)};
  BallView reused;
  BallScratch scratch;
  for (const Graph& g : graphs) {
    for (int radius : {0, 1, 2, 4}) {
      for (NodeId center = 0; center < g.node_count(); center += 3) {
        const BallView fresh(g, center, radius);
        reused.collect(g, center, radius, scratch);
        ASSERT_EQ(fresh.size(), reused.size());
        ASSERT_TRUE(std::equal(fresh.members().begin(),
                               fresh.members().end(),
                               reused.members().begin()));
        for (NodeId i = 0; i < fresh.size(); ++i) {
          ASSERT_EQ(fresh.distance(i), reused.distance(i));
          ASSERT_EQ(fresh.host_degree(i), reused.host_degree(i));
          const auto want = fresh.neighbors(i);
          const auto got = reused.neighbors(i);
          ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(),
                                 got.end()));
        }
        ASSERT_EQ(fresh.structure_signature(),
                  reused.structure_signature());
        ASSERT_EQ(fresh.encoded_words(), reused.encoded_words());
      }
    }
  }
}

TEST(Ops, DisjointUnion) {
  const Graph a = cycle(4);
  const Graph b = path(3);
  const UnionResult u = disjoint_union({&a, &b});
  EXPECT_EQ(u.graph.node_count(), 7u);
  EXPECT_EQ(u.graph.edge_count(), 6u);
  EXPECT_EQ(component_count(u.graph), 2u);
  EXPECT_EQ(u.offsets[0], 0u);
  EXPECT_EQ(u.offsets[1], 4u);
  EXPECT_TRUE(u.graph.has_edge(4, 5));  // path edge shifted by 4
}

TEST(Ops, SubdivideEdgeTwice) {
  const Graph g = cycle(5);
  const DoubleSubdivision s = subdivide_edge_twice(g, 0, 1);
  EXPECT_EQ(s.graph.node_count(), 7u);
  EXPECT_EQ(s.graph.edge_count(), 7u);
  EXPECT_FALSE(s.graph.has_edge(0, 1));
  EXPECT_TRUE(s.graph.has_edge(0, s.first));
  EXPECT_TRUE(s.graph.has_edge(s.first, s.second));
  EXPECT_TRUE(s.graph.has_edge(s.second, 1));
  EXPECT_TRUE(is_connected(s.graph));
  EXPECT_EQ(diameter(s.graph), diameter(g) + 1);
}

TEST(Ops, RelabelPreservesStructure) {
  const Graph g = path(4);  // 0-1-2-3
  const Graph r = relabel(g, {3, 2, 1, 0});
  EXPECT_TRUE(r.has_edge(3, 2));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_EQ(r.edge_count(), 3u);
}

TEST(Metrics, BfsAndDistance) {
  const Graph g = cycle(10);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[5], 5);
  EXPECT_EQ(dist[9], 1);
  EXPECT_EQ(distance(g, 0, 5), 5);
  EXPECT_EQ(eccentricity(g, 0), 5);
}

TEST(Metrics, DisconnectedDiameter) {
  Graph::Builder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_EQ(diameter(g), -1);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(component_count(g), 2u);
}

TEST(Metrics, ArticulationPoints) {
  // Two triangles sharing node 2: node 2 is the only cut vertex.
  Graph::Builder b;
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
  b.add_edge(2, 3).add_edge(3, 4).add_edge(2, 4);
  const Graph g = b.build();
  const auto cuts = articulation_points(g);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], 2u);
  EXPECT_FALSE(is_biconnected(g));
  EXPECT_TRUE(is_biconnected(cycle(6)));
  EXPECT_FALSE(is_biconnected(path(6)));
}

TEST(Metrics, ScatteredNodesRespectSeparation) {
  const Graph g = cycle(30);
  const auto nodes = scattered_nodes(g, 5, 100);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      EXPECT_GT(distance(g, nodes[i], nodes[j]), 5);
    }
  }
  EXPECT_GE(nodes.size(), 4u);  // 30 / 6 = 5 fit greedily
}

TEST(Io, EdgeListRoundTrip) {
  const Graph g = petersen();
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(g, back);
}

TEST(Io, EdgeListRejectsMalformed) {
  std::stringstream missing("3");
  EXPECT_THROW(read_edge_list(missing), std::runtime_error);
  std::stringstream range("2 1\n0 5\n");
  EXPECT_THROW(read_edge_list(range), std::runtime_error);
  std::stringstream loop("2 1\n1 1\n");
  EXPECT_THROW(read_edge_list(loop), std::runtime_error);
}

TEST(Io, DotContainsNodesAndEdges) {
  std::ostringstream os;
  write_dot(os, path(3), {"a", "b", "c"});
  const std::string dot = os.str();
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"b\""), std::string::npos);
}

}  // namespace
}  // namespace lnc::graph
