// The implicit-topology bit-identity contract (PR "Implicit giga-scale
// topologies"):
//
//   1. Per implicit-capable family, balls collected through the
//      ImplicitTopology equal — member for member, edge for edge, word
//      for word — balls collected from the materialized Graph of the
//      same (family, n, params, seed), and materialize() reproduces the
//      generator's graph exactly.
//   2. A full ball-mode sweep produces bit-identical tallies and
//      deterministic telemetry whether the grid point materializes or
//      streams, at 1 and at 8 threads.
//   3. Execution is representation, not semantics: all three Execution
//      values of one spec share a single serve cache key.
//   4. Validation rejects implicit execution for scenarios that cannot
//      stream, with actionable diagnostics.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "graph/ball.h"
#include "graph/implicit.h"
#include "rand/splitmix.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/spec_json.h"
#include "scenario/sweep.h"
#include "serve/cache_key.h"
#include "stats/threadpool.h"

namespace lnc {
namespace {

struct FamilyCase {
  const char* name;
  scenario::ParamMap params;  // must make build_implicit accept
};

std::vector<FamilyCase> implicit_families() {
  return {
      {"ring", {}},
      {"path", {}},
      {"grid", {{"random-ids", 0}}},
      {"torus", {{"random-ids", 0}}},
      {"hypercube", {{"random-ids", 0}}},
      {"binary-tree", {{"random-ids", 0}}},
      {"random-regular", {{"random-ids", 0}}},
      {"gnp", {{"random-ids", 0}}},
  };
}

void expect_balls_equal(const graph::BallView& a, const graph::BallView& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(a.structure_signature(), b.structure_signature()) << label;
  EXPECT_EQ(a.encoded_words(), b.encoded_words()) << label;
  for (graph::NodeId local = 0; local < a.size(); ++local) {
    ASSERT_EQ(a.to_original(local), b.to_original(local)) << label;
    ASSERT_EQ(a.distance(local), b.distance(local)) << label;
    ASSERT_EQ(a.host_degree(local), b.host_degree(local)) << label;
    const auto na = a.neighbors(local);
    const auto nb = b.neighbors(local);
    ASSERT_EQ(std::vector<graph::NodeId>(na.begin(), na.end()),
              std::vector<graph::NodeId>(nb.begin(), nb.end()))
        << label;
  }
}

TEST(ImplicitTopology, BallsMatchMaterializedPerFamily) {
  for (const FamilyCase& family : implicit_families()) {
    const scenario::TopologyEntry* entry =
        scenario::topologies().find(family.name);
    ASSERT_NE(entry, nullptr) << family.name;
    ASSERT_TRUE(entry->build_implicit) << family.name;
    const scenario::ParamMap merged =
        scenario::merged_params(entry->schema, family.params);
    for (const std::uint64_t n : {std::uint64_t{16}, std::uint64_t{256},
                                  std::uint64_t{4096}}) {
      const std::uint64_t seed = rand::mix_keys(1, n);
      const auto implicit = entry->build_implicit(n, merged, seed);
      ASSERT_NE(implicit, nullptr) << family.name;
      const local::Instance inst = entry->build(n, merged, seed);
      ASSERT_EQ(inst.g.node_count(), implicit->node_count()) << family.name;
      const graph::NodeId count = inst.g.node_count();

      // The synthesized neighborhoods materialize to the generator's
      // graph exactly (vacuous for gnp/random-regular, whose generators
      // already build through the sampler; the real content for the
      // analytic families).
      if (count <= 256) {
        const graph::Graph rebuilt = graph::materialize(*implicit);
        ASSERT_EQ(rebuilt.node_count(), count) << family.name;
        for (graph::NodeId v = 0; v < count; ++v) {
          const auto got = rebuilt.neighbors(v);
          const auto want = inst.g.neighbors(v);
          ASSERT_EQ(std::vector<graph::NodeId>(got.begin(), got.end()),
                    std::vector<graph::NodeId>(want.begin(), want.end()))
              << family.name << " n=" << n << " v=" << v;
        }
      }

      // Ball equality: every center at small sizes, strided beyond.
      const graph::NodeId stride = count <= 256 ? 1 : count / 61;
      graph::BallScratch graph_scratch;
      graph::BallScratch implicit_scratch;
      graph::BallView from_graph;
      graph::BallView from_implicit;
      for (int radius = 0; radius <= 2; ++radius) {
        for (graph::NodeId v = 0; v < count; v += stride) {
          from_graph.collect(inst.g, v, radius, graph_scratch);
          from_implicit.collect(*implicit, v, radius, implicit_scratch);
          expect_balls_equal(
              from_graph, from_implicit,
              std::string(family.name) + " n=" + std::to_string(n) +
                  " v=" + std::to_string(v) +
                  " r=" + std::to_string(radius));
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

scenario::ScenarioSpec streaming_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "implicit-identity";
  spec.topology = "ring";
  spec.language = "mis";
  spec.construction = "luby-ball";
  spec.decider = "lcl";
  spec.params["phases"] = 4;
  spec.n_grid = {4096};
  spec.trials = 64;
  spec.base_seed = 7;
  return spec;
}

void expect_sweeps_equal(const scenario::SweepResult& a,
                         const scenario::SweepResult& b,
                         const std::string& label) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    const scenario::SweepRow& ra = a.rows[i];
    const scenario::SweepRow& rb = b.rows[i];
    EXPECT_EQ(ra.actual_n, rb.actual_n) << label;
    EXPECT_EQ(ra.tally.trials, rb.tally.trials) << label;
    EXPECT_EQ(ra.tally.successes, rb.tally.successes) << label;
    EXPECT_EQ(ra.tally.telemetry.messages_sent,
              rb.tally.telemetry.messages_sent)
        << label;
    EXPECT_EQ(ra.tally.telemetry.words_sent, rb.tally.telemetry.words_sent)
        << label;
    EXPECT_EQ(ra.tally.telemetry.rounds_executed,
              rb.tally.telemetry.rounds_executed)
        << label;
    EXPECT_EQ(ra.tally.telemetry.ball_expansions,
              rb.tally.telemetry.ball_expansions)
        << label;
  }
}

TEST(ImplicitTopology, SweepBitIdenticalAcrossExecutionAndThreads) {
  scenario::ScenarioSpec materialized = streaming_spec();
  materialized.execution = scenario::Execution::kMaterialized;
  ASSERT_EQ(scenario::validate(materialized), "");
  const scenario::SweepResult reference =
      scenario::run_sweep(scenario::compile(materialized));
  ASSERT_TRUE(reference.complete());
  // A degenerate tally (0 or all successes) would let an
  // always-reject/accept bug slip through the comparison.
  ASSERT_GT(reference.rows[0].tally.successes, 0u);
  ASSERT_LT(reference.rows[0].tally.successes, reference.rows[0].tally.trials);

  scenario::ScenarioSpec implicit = streaming_spec();
  implicit.execution = scenario::Execution::kImplicit;
  ASSERT_EQ(scenario::validate(implicit), "");
  const scenario::CompiledScenario compiled = scenario::compile(implicit);
  ASSERT_TRUE(compiled.points()[0].instance->is_implicit());

  expect_sweeps_equal(reference, scenario::run_sweep(compiled),
                      "implicit sequential");
  const stats::ThreadPool pool(8);
  scenario::SweepOptions options;
  options.pool = &pool;
  expect_sweeps_equal(reference, scenario::run_sweep(compiled, options),
                      "implicit 8 threads");
}

TEST(ImplicitTopology, ExecutionSharesOneCacheKey) {
  scenario::ScenarioSpec spec = streaming_spec();
  spec.execution = scenario::Execution::kAuto;
  const serve::CacheKey auto_key = serve::cache_key(spec);
  spec.execution = scenario::Execution::kMaterialized;
  EXPECT_EQ(serve::cache_key(spec), auto_key);
  spec.execution = scenario::Execution::kImplicit;
  EXPECT_EQ(serve::cache_key(spec), auto_key);

  // The normal form strips execution outright...
  EXPECT_EQ(scenario::cache_normal_form(spec).execution,
            scenario::Execution::kAuto);
  // ...and kAuto never reaches the spec JSON, so pre-existing keys (and
  // files) are byte-unchanged.
  EXPECT_EQ(scenario::spec_to_json(streaming_spec()).find("execution"),
            std::string::npos);
  // Forced execution round-trips field for field through spec JSON.
  const scenario::ScenarioSpec reparsed =
      scenario::spec_from_json(scenario::spec_to_json(spec));
  EXPECT_EQ(reparsed.execution, scenario::Execution::kImplicit);
}

TEST(ImplicitTopology, ValidationRejectsUnstreamableSpecs) {
  // Engine-backed construction cannot stream.
  scenario::ScenarioSpec spec = streaming_spec();
  spec.execution = scenario::Execution::kImplicit;
  spec.construction = "luby-mis";
  spec.params.erase("phases");
  EXPECT_NE(scenario::validate(spec).find("engine-backed"),
            std::string::npos);

  // Families without a local neighborhood oracle cannot stream.
  spec = streaming_spec();
  spec.execution = scenario::Execution::kImplicit;
  spec.topology = "random-tree";
  EXPECT_NE(scenario::validate(spec).find("no implicit representation"),
            std::string::npos);

  // Implicit instances compute consecutive identities.
  spec = streaming_spec();
  spec.execution = scenario::Execution::kImplicit;
  spec.params["random-ids"] = 1;
  EXPECT_NE(scenario::validate(spec).find("random-ids"), std::string::npos);

  // The exact pseudo-decider reads an O(n) labeling.
  spec = streaming_spec();
  spec.execution = scenario::Execution::kImplicit;
  spec.decider = "exact";
  EXPECT_NE(scenario::validate(spec).find("local decider"),
            std::string::npos);

  // Engine exec modes need a materialized graph to step.
  spec = streaming_spec();
  spec.execution = scenario::Execution::kImplicit;
  spec.mode = local::ExecMode::kMessages;
  EXPECT_NE(scenario::validate(spec).find("mode=balls"), std::string::npos);

  // kAuto beyond the cap demands an implicit-capable scenario...
  spec = streaming_spec();
  spec.topology = "random-tree";
  spec.n_grid = {scenario::kMaterializeCap + 1};
  EXPECT_NE(scenario::validate(spec).find("materialization cap"),
            std::string::npos);

  // ...and a streamable spec validates clean there without building
  // anything of that size.
  spec = streaming_spec();
  spec.n_grid = {scenario::kMaterializeCap + 1};
  EXPECT_EQ(scenario::validate(spec), "");

  // Node ids are 32-bit on every path.
  spec = streaming_spec();
  spec.n_grid = {std::uint64_t{1} << 32};
  EXPECT_NE(scenario::validate(spec).find("NodeId"), std::string::npos);
}

}  // namespace
}  // namespace lnc
