#!/usr/bin/env python3
"""CI sweep bit-identity gate: two lnc_sweep runs that the contracts say
are the same result — a sharded run merged with `lnc_sweep --merge`
against the unsharded run, or an implicit-execution run against the
materialized run of one spec — must reproduce each other BIT FOR BIT.

Usage: check_value_merge.py REFERENCE.json OTHER.json...

Each file is a complete lnc_sweep --out result. The gate compares, per
row, the workload's authoritative tally against the first file: the
exact-sum accumulators (hex words plus the rounded sum/sum_sq doubles)
for value workloads, the integer count slots for counter workloads, the
success/trial counts for success workloads. Any difference means the
bit-identity contract broke. Telemetry timing fields are
machine-dependent and ignored (the telemetry gate checks the
deterministic counters).
"""
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    workload = data.get("workload", "success")
    if workload not in ("success", "value", "counter"):
        raise SystemExit(f"{path}: unknown workload {workload!r}")
    for row in data["rows"]:
        if row["trials"] != row["total_trials"]:
            raise SystemExit(
                f"{path}: row n={row['n']} covers {row['trials']} of "
                f"{row['total_trials']} trials — pass a complete "
                "(unsharded or merged) result")
        if workload == "value" and "values" not in row:
            raise SystemExit(f"{path}: value row n={row['n']} has no "
                             "values block")
        if workload == "counter" and "counts" not in row:
            raise SystemExit(f"{path}: counter row n={row['n']} has no "
                             "counts array")
        if workload == "success" and "successes" not in row:
            raise SystemExit(f"{path}: success row n={row['n']} has no "
                             "successes count")
    return data


def row_fingerprint(workload, row):
    if workload == "value":
        values = row["values"]
        return (values["exact_sum"], values["exact_sum_sq"],
                values["sum"], values["sum_sq"])
    if workload == "counter":
        return tuple(row["counts"])
    return (row["successes"], row["trials"])


def main(argv):
    if len(argv) < 3:
        raise SystemExit(__doc__)
    reference_path = argv[1]
    reference = load(reference_path)
    workload = reference.get("workload")
    if workload == "value":
        nonzero = any(row["values"]["exact_sum"] != "0"
                      for row in reference["rows"])
    elif workload == "counter":
        nonzero = any(count != 0 for row in reference["rows"]
                      for count in row["counts"])
    else:
        # Success smokes must be non-degenerate in BOTH directions: an
        # always-accept (or always-reject) tally would let a decider that
        # ignores its input slip through the comparison.
        nonzero = any(0 < row["successes"] < row["trials"]
                      for row in reference["rows"])
    if not nonzero:
        raise SystemExit(f"{reference_path}: every row tallies "
                         "degenerately — the smoke scenario is not "
                         "exercising the workload path")
    for path in argv[2:]:
        other = load(path)
        if other.get("workload") != workload or \
                len(other["rows"]) != len(reference["rows"]):
            raise SystemExit(f"{path}: result of a different sweep shape "
                             f"than {reference_path}")
        for ref_row, row in zip(reference["rows"], other["rows"]):
            want = row_fingerprint(workload, ref_row)
            got = row_fingerprint(workload, row)
            if want != got:
                raise SystemExit(
                    f"{workload}-tally mismatch at n={row['n']}: "
                    f"{reference_path} has {want}, {path} has {got}")
    print(f"bit-identity gate OK: {workload} tallies identical across "
          f"{reference_path} and {', '.join(argv[2:])}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
