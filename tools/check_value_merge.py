#!/usr/bin/env python3
"""CI value-sweep merge gate: a sharded value/counter sweep merged with
`lnc_sweep --merge` must reproduce the unsharded run BIT FOR BIT.

Usage: check_value_merge.py UNSHARDED.json MERGED.json...

Each file is a complete lnc_sweep --out result of a value or counter
workload. The gate compares, per row, the exact-sum accumulators (the
authoritative hex words plus the rounded sum/sum_sq doubles) or the
integer count slots against the first file — any difference means the
exact-merge contract broke. Telemetry timing fields are machine-dependent
and ignored (the telemetry gate checks the deterministic counters).
"""
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    workload = data.get("workload", "success")
    if workload not in ("value", "counter"):
        raise SystemExit(f"{path}: workload is {workload!r} — pass value or "
                         "counter sweep results to this gate")
    for row in data["rows"]:
        if row["trials"] != row["total_trials"]:
            raise SystemExit(
                f"{path}: row n={row['n']} covers {row['trials']} of "
                f"{row['total_trials']} trials — pass a complete "
                "(unsharded or merged) result")
        if workload == "value" and "values" not in row:
            raise SystemExit(f"{path}: value row n={row['n']} has no "
                             "values block")
        if workload == "counter" and "counts" not in row:
            raise SystemExit(f"{path}: counter row n={row['n']} has no "
                             "counts array")
    return data


def row_fingerprint(workload, row):
    if workload == "value":
        values = row["values"]
        return (values["exact_sum"], values["exact_sum_sq"],
                values["sum"], values["sum_sq"])
    return tuple(row["counts"])


def main(argv):
    if len(argv) < 3:
        raise SystemExit(__doc__)
    reference_path = argv[1]
    reference = load(reference_path)
    workload = reference.get("workload")
    if workload == "value":
        nonzero = any(row["values"]["exact_sum"] != "0"
                      for row in reference["rows"])
    else:
        nonzero = any(count != 0 for row in reference["rows"]
                      for count in row["counts"])
    if not nonzero:
        raise SystemExit(f"{reference_path}: every row tallies to zero — "
                         "the smoke scenario is not exercising the "
                         "value path")
    for path in argv[2:]:
        other = load(path)
        if other.get("workload") != workload or \
                len(other["rows"]) != len(reference["rows"]):
            raise SystemExit(f"{path}: result of a different sweep shape "
                             f"than {reference_path}")
        for ref_row, row in zip(reference["rows"], other["rows"]):
            want = row_fingerprint(workload, ref_row)
            got = row_fingerprint(workload, row)
            if want != got:
                raise SystemExit(
                    f"value-merge mismatch at n={row['n']}: "
                    f"{reference_path} has {want}, {path} has {got}")
    print(f"value-merge gate OK: {workload} tallies bit-identical across "
          f"{reference_path} and {', '.join(argv[2:])}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
