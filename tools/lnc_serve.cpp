// lnc_serve — the serving tier's front door (src/serve). One binary,
// two modes:
//
//   lnc_serve --socket PATH --cache DIR [--tcp PORT] [--threads N]
//             [--max-requests N]
//       Run the daemon: line-delimited JSON requests over a Unix socket
//       (and optionally loopback TCP), answered from the
//       content-addressed result store. A repeated query is a cache
//       hit; a query with more trials computes only the missing trial
//       range and merges it exactly (see src/serve/daemon.h for the
//       wire format).
//
//   lnc_serve --query --socket PATH|--tcp PORT --scenario NAME
//             [--trials N] [--seed S] [--n A,B,C] [--param k=v]...
//   lnc_serve --query ... --spec FILE.json
//   lnc_serve --query ... --request '{"scenario": ...}'
//       Client: build (or pass through) one request line, print the
//       response JSON on stdout and a human-readable cache line on
//       stderr. Exits nonzero when the daemon reports an error. The
//       connect retries until --timeout seconds, so a script can start
//       the daemon and query it with no sleep in between.
//
//   lnc_serve --query-stats (--socket PATH | --tcp PORT)
//       Ask a running daemon for its monotonic query totals and latency
//       metrics ({"op": "stats"} on the wire — runs no trials): raw
//       response JSON on stdout, a one-line summary on stderr.
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/spec_json.h"
#include "serve/daemon.h"
#include "util/build_info.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace {

using namespace lnc;

int usage(std::ostream& os, int code) {
  os << "usage: lnc_serve --socket PATH --cache DIR [--tcp PORT]\n"
        "                 [--threads N] [--max-requests N]\n"
        "       lnc_serve --query (--socket PATH | --tcp PORT)\n"
        "                 (--scenario NAME | --spec FILE.json |\n"
        "                  --request JSONLINE)\n"
        "                 [--trials N] [--seed S] [--n A,B,C]\n"
        "                 [--param k=v]... [--timeout SECONDS]\n"
        "       lnc_serve --query-stats (--socket PATH | --tcp PORT)\n"
        "The daemon answers spec queries from a content-addressed cache\n"
        "of merged sweep results: repeated queries hit without running a\n"
        "single trial, and a raised trial count computes only the missing\n"
        "range — bit-identical to a cold run at the full count.\n"
        "build identity: " << util::build_identity() << "\n";
  return code;
}

struct Options {
  bool help = false;
  bool version = false;
  bool query = false;
  bool query_stats = false;
  std::string socket_path;
  int tcp_port = 0;
  std::string cache_dir;
  unsigned threads = 0;
  std::uint64_t max_requests = 0;
  // Client-side request assembly.
  std::optional<std::string> scenario_name;
  std::optional<std::string> spec_file;
  std::optional<std::string> raw_request;
  std::optional<std::uint64_t> trials;
  std::optional<std::uint64_t> seed;
  std::optional<std::vector<std::uint64_t>> n_grid;
  std::vector<std::pair<std::string, double>> params;
  double timeout_seconds = 10.0;
};

bool parse_args(int argc, char** argv, Options& options, std::string& error) {
  auto next_value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      error = flag + " needs a value";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--help") {
      options.help = true;
    } else if (arg == "--version") {
      options.version = true;
    } else if (arg == "--query") {
      options.query = true;
    } else if (arg == "--query-stats") {
      options.query_stats = true;
    } else if (arg == "--socket") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.socket_path = value;
    } else if (arg == "--tcp") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<std::uint64_t> port = util::parse_uint(value);
      if (!port || *port == 0 || *port > 65535) {
        error = std::string("--tcp expects a port in [1, 65535], got '") +
                value + "'";
        return false;
      }
      options.tcp_port = static_cast<int>(*port);
    } else if (arg == "--cache") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.cache_dir = value;
    } else if (arg == "--threads") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<std::uint64_t> threads = util::parse_uint(value);
      if (!threads || *threads > 4096) {
        error = std::string("--threads expects a non-negative integer "
                            "(<= 4096), got '") + value + "'";
        return false;
      }
      options.threads = static_cast<unsigned>(*threads);
    } else if (arg == "--max-requests") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<std::uint64_t> count = util::parse_uint(value);
      if (!count) {
        error = std::string("--max-requests expects a non-negative "
                            "integer, got '") + value + "'";
        return false;
      }
      options.max_requests = *count;
    } else if (arg == "--scenario") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.scenario_name = value;
    } else if (arg == "--spec") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.spec_file = value;
    } else if (arg == "--request") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.raw_request = value;
    } else if (arg == "--trials") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<std::uint64_t> trials = util::parse_uint(value);
      if (!trials) {
        error = std::string("--trials expects a non-negative integer, "
                            "got '") + value + "'";
        return false;
      }
      options.trials = *trials;
    } else if (arg == "--seed") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<std::uint64_t> seed = util::parse_uint(value);
      if (!seed) {
        error = std::string("--seed expects a non-negative integer, "
                            "got '") + value + "'";
        return false;
      }
      options.seed = *seed;
    } else if (arg == "--n") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      std::vector<std::uint64_t> grid;
      for (const std::string& part : util::split(value, ',')) {
        const std::optional<std::uint64_t> n = util::parse_uint(part);
        if (!n) {
          error = "--n expects non-negative integers, got '" + part + "'";
          return false;
        }
        grid.push_back(*n);
      }
      options.n_grid = std::move(grid);
    } else if (arg == "--param") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string text = value;
      const std::size_t eq = text.find('=');
      if (eq == std::string::npos) {
        error = "--param expects k=v, got '" + text + "'";
        return false;
      }
      const std::optional<double> param_value =
          util::parse_finite_double(text.substr(eq + 1));
      if (!param_value) {
        error = "--param " + text + " has a malformed numeric value";
        return false;
      }
      options.params.emplace_back(text.substr(0, eq), *param_value);
    } else if (arg == "--timeout") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<double> seconds =
          util::parse_nonnegative_double(value);
      if (!seconds) {
        error = std::string("--timeout expects seconds, got '") + value +
                "'";
        return false;
      }
      options.timeout_seconds = *seconds;
    } else {
      error = "unknown flag '" + arg + "'";
      return false;
    }
  }
  return true;
}

/// Assembles the client's request line from flags (unless --request gave
/// it verbatim). The daemon re-validates everything; this only shapes
/// the JSON.
std::string build_request(const Options& options, std::string& error) {
  if (options.raw_request) return *options.raw_request;
  std::ostringstream os;
  os << "{";
  if (options.scenario_name) {
    os << "\"scenario\": \"" << util::json_escape(*options.scenario_name)
       << "\"";
  } else if (options.spec_file) {
    std::string text;
    const std::string read_error = util::read_file(*options.spec_file, text);
    if (!read_error.empty()) {
      error = read_error;
      return {};
    }
    while (!text.empty() &&
           (text.back() == '\n' || text.back() == ' ')) {
      text.pop_back();
    }
    if (text.find('\n') != std::string::npos) {
      // The wire protocol is line-delimited; re-serialize multi-line
      // spec files into the canonical single-line form.
      try {
        text = scenario::spec_to_json(scenario::spec_from_json(text));
      } catch (const std::exception& ex) {
        error = "spec file '" + *options.spec_file + "': " + ex.what();
        return {};
      }
      while (!text.empty() && text.back() == '\n') text.pop_back();
    }
    os << "\"spec\": " << text;
  } else {
    error = "--query needs one of --scenario, --spec, or --request";
    return {};
  }
  if (options.trials) os << ", \"trials\": " << *options.trials;
  if (options.seed) os << ", \"seed\": " << *options.seed;
  if (options.n_grid) {
    os << ", \"n\": [";
    for (std::size_t i = 0; i < options.n_grid->size(); ++i) {
      if (i > 0) os << ", ";
      os << (*options.n_grid)[i];
    }
    os << "]";
  }
  if (!options.params.empty()) {
    os << ", \"params\": {";
    for (std::size_t i = 0; i < options.params.size(); ++i) {
      if (i > 0) os << ", ";
      std::ostringstream number;
      number.precision(17);
      number << options.params[i].second;
      os << "\"" << util::json_escape(options.params[i].first)
         << "\": " << number.str();
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

int query_mode(const Options& options) {
  if (options.socket_path.empty() && options.tcp_port == 0) {
    std::cerr << "--query needs --socket PATH or --tcp PORT\n";
    return 2;
  }
  std::string error;
  const std::string request = build_request(options, error);
  if (!error.empty()) {
    std::cerr << error << "\n";
    return 2;
  }
  serve::Endpoint endpoint;
  endpoint.socket_path = options.socket_path;
  endpoint.tcp_port = options.tcp_port;
  std::string response;
  if (!serve::query_daemon(endpoint, request, options.timeout_seconds,
                           response, error)) {
    std::cerr << "lnc_serve: " << error << "\n";
    return 1;
  }
  // Raw response on stdout for scripts; the human-readable cache line on
  // stderr so piping stdout into a JSON tool stays clean.
  std::cout << response << "\n";
  try {
    const scenario::Json root = scenario::Json::parse(response);
    if (root.at("status").as_string() != "ok") {
      std::cerr << "lnc_serve: daemon error: "
                << root.at("error").as_string() << "\n";
      return 1;
    }
    const scenario::Json& cache = root.at("cache");
    std::cerr << "cache: outcome=" << cache.at("outcome").as_string()
              << " trials_reused=" << cache.at("trials_reused").as_uint64()
              << " trials_computed="
              << cache.at("trials_computed").as_uint64() << "\n";
  } catch (const std::exception& ex) {
    std::cerr << "lnc_serve: malformed daemon response: " << ex.what()
              << "\n";
    return 1;
  }
  return 0;
}

/// {"op": "stats"}: raw response on stdout (scripts), a one-line totals
/// summary on stderr (humans / CI greps).
int stats_mode(const Options& options) {
  if (options.socket_path.empty() && options.tcp_port == 0) {
    std::cerr << "--query-stats needs --socket PATH or --tcp PORT\n";
    return 2;
  }
  serve::Endpoint endpoint;
  endpoint.socket_path = options.socket_path;
  endpoint.tcp_port = options.tcp_port;
  std::string response;
  std::string error;
  if (!serve::query_daemon(endpoint, "{\"op\": \"stats\"}",
                           options.timeout_seconds, response, error)) {
    std::cerr << "lnc_serve: " << error << "\n";
    return 1;
  }
  std::cout << response << "\n";
  try {
    const scenario::Json root = scenario::Json::parse(response);
    if (root.at("status").as_string() != "ok") {
      std::cerr << "lnc_serve: daemon error: "
                << root.at("error").as_string() << "\n";
      return 1;
    }
    const scenario::Json& stats = root.at("stats");
    std::cerr << "stats: queries=" << stats.at("queries").as_uint64()
              << " hits=" << stats.at("hits").as_uint64()
              << " topups=" << stats.at("topups").as_uint64()
              << " misses=" << stats.at("misses").as_uint64()
              << " trials_reused=" << stats.at("trials_reused").as_uint64()
              << " trials_computed="
              << stats.at("trials_computed").as_uint64() << "\n";
  } catch (const std::exception& ex) {
    std::cerr << "lnc_serve: malformed daemon response: " << ex.what()
              << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string error;
  if (!parse_args(argc, argv, options, error)) {
    std::cerr << error << "\n";
    return usage(std::cerr, 2);
  }
  if (options.help) return usage(std::cout, 0);
  if (options.version) {
    std::cout << "lnc_serve (" << util::build_identity() << ")\n";
    return 0;
  }
  if (options.query && options.query_stats) {
    std::cerr << "pick one of --query, --query-stats\n";
    return usage(std::cerr, 2);
  }
  if (options.query_stats) return stats_mode(options);
  if (options.query) return query_mode(options);

  if (options.socket_path.empty()) {
    std::cerr << "the daemon needs --socket PATH\n";
    return usage(std::cerr, 2);
  }
  if (options.cache_dir.empty()) {
    std::cerr << "the daemon needs --cache DIR\n";
    return usage(std::cerr, 2);
  }
  serve::DaemonOptions daemon_options;
  daemon_options.socket_path = options.socket_path;
  daemon_options.tcp_port = options.tcp_port;
  daemon_options.cache_dir = options.cache_dir;
  daemon_options.threads = options.threads;
  daemon_options.max_requests = options.max_requests;
  daemon_options.status = &std::cerr;
  try {
    const int rc = serve::run_daemon(daemon_options, &error);
    if (rc != 0) std::cerr << "lnc_serve: " << error << "\n";
    return rc;
  } catch (const std::exception& ex) {
    std::cerr << "lnc_serve: " << ex.what() << "\n";
    return 1;
  }
}
