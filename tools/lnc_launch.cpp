// lnc_launch — the distributed sweep orchestrator (src/orchestrate).
//
// Turns any scenario into a fleet of `lnc_sweep --shard i/k` jobs, runs
// them over a pluggable transport with per-job timeouts and
// retry-with-backoff, records every state transition in a persistent run
// manifest, and gathers the shard results into the EXACT unsharded
// SweepResult (estimates, exact-sum value accumulators, counter slots,
// and deterministic telemetry counters are bit-identical — the same
// merge contract `lnc_sweep --merge` obeys).
//
//   lnc_launch --scenario NAME --shards K [options] [overrides]
//   lnc_launch --spec FILE.json --shards K [options] [overrides]
//       Plan a fresh run directory and execute it.
//   lnc_launch --resume DIR [options]
//       Re-run only the missing/failed shards of an interrupted run,
//       then merge.
//
// Options:
//   --run-dir DIR        run directory (default lnc-run-<scenario>)
//   --transport local|ssh   (default local: fork/exec lnc_sweep)
//   --ssh-template TMPL  ssh/srun command template; {cmd} expands to the
//                        lnc_sweep invocation (bare shell-safe words —
//                        pick run-dir/binary paths without spaces),
//                        {shard} to the shard index, e.g.
//                        'ssh worker{shard} {cmd}'. The run directory
//                        must be on a filesystem the remote command can
//                        reach.
//   --remote-sweep CMD   lnc_sweep spelling on the executor (ssh only)
//   --sweep-bin PATH     local lnc_sweep binary (default: next to this)
//   --sweep-threads N    lnc_sweep --threads per shard (default 1)
//   --jobs J             concurrent shard jobs (default min(K, cores))
//   --timeout SEC        per-attempt deadline; stragglers are killed and
//                        re-dispatched (default: none)
//   --retries N          attempts per shard per run (default 3)
//   --backoff-ms MS      first retry delay, doubling per retry (def 100)
//   --out FILE           also write the merged result JSON
//   --trace FILE         write a Chrome trace-event JSON of the fleet:
//                        one "shard-attempt" span per dispatch attempt
//                        (tagged shard/attempt/outcome), a "merge" span,
//                        and the enclosing "fleet" span. Load in
//                        Perfetto (ui.perfetto.dev). Timing-only: the
//                        merged result is bit-identical with or without.
//   --progress           live fleet heartbeat on stderr (shards done,
//                        throughput, ETA) between the per-transition
//                        launch[...] lines
//   --cache DIR          content-addressed result store (serve/): a
//                        cached result at >= the requested trials is
//                        served without launching any shard; a cached
//                        PREFIX turns the fleet into a top-up run that
//                        computes only the missing trial range and merges
//                        bit-identically; misses run the classic fleet.
//                        Merged results are written back to the store
//                        (also on --resume, by re-reading the frozen
//                        spec).
//   --inject-fail S[:T]  TEST HOOK: fail shard S's first T attempts
//                        (default 1) before reaching the transport — CI
//                        exercises the retry path with this.
// Overrides (new runs only; the spec is frozen into the run directory):
//   --param k=v | --n A,B,C | --trials N | --seed S
//   --workload success|value|counter | --statistic NAME
//   --success accept|reject | --mode balls|messages|two-phase
//   --backend auto|naive|batched|vectorized
//   --execution auto|materialized|implicit
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "orchestrate/launch.h"
#include "orchestrate/manifest.h"
#include "orchestrate/supervisor.h"
#include "orchestrate/transport.h"
#include "scenario/presets.h"
#include "scenario/scenario.h"
#include "scenario/spec_json.h"
#include "scenario/sweep.h"
#include "serve/cache_key.h"
#include "serve/result_store.h"
#include "util/build_info.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace {

using namespace lnc;

int usage(std::ostream& os, int code) {
  os << "usage: lnc_launch --scenario NAME --shards K [options]\n"
        "       lnc_launch --spec FILE.json --shards K [options]\n"
        "       lnc_launch --resume DIR [options]\n"
        "options: --run-dir DIR | --transport local|ssh\n"
        "         --ssh-template 'ssh worker{shard} {cmd}'\n"
        "         --remote-sweep CMD | --sweep-bin PATH\n"
        "         --sweep-threads N | --jobs J | --timeout SEC\n"
        "         --retries N | --backoff-ms MS | --out FILE\n"
        "         --trace FILE  (Chrome trace of the fleet — shard\n"
        "                        lifecycle + merge spans; Perfetto-ready)\n"
        "         --progress    (live fleet heartbeat on stderr)\n"
        "         --cache DIR   (result store: hit skips the fleet,\n"
        "                        a cached prefix tops up only the missing\n"
        "                        trials; merged results are written back)\n"
        "         --inject-fail SHARD[:TIMES]   (test hook)\n"
        "overrides (new runs): --param k=v | --n A,B,C | --trials N\n"
        "         --seed S | --workload success|value|counter\n"
        "         --statistic NAME | --success accept|reject\n"
        "         --mode balls|messages|two-phase\n"
        "         --backend auto|naive|batched|vectorized\n"
        "         --execution auto|materialized|implicit\n"
        "         --fault NAME | --fault-param k=v\n"
        "The merged result is bit-identical to the unsharded lnc_sweep\n"
        "run; failed shards never reach the merge (faulty runs included:\n"
        "fault draws are keyed per trial, never per process).\n"
        "build identity: " << util::build_identity() << "\n";
  return code;
}

struct Options {
  std::optional<std::string> scenario_name;
  std::optional<std::string> spec_file;
  std::optional<std::string> resume_dir;

  unsigned shards = 0;
  std::optional<std::string> run_dir;
  std::string transport = "local";
  std::optional<std::string> ssh_template;
  std::string remote_sweep = "lnc_sweep";
  std::optional<std::string> sweep_bin;
  unsigned sweep_threads = 1;
  orchestrate::SupervisorOptions supervisor;
  std::optional<std::string> out_file;
  std::optional<std::string> trace_file;
  std::optional<std::string> cache_dir;
  std::optional<std::pair<unsigned, unsigned>> inject_fail;  // shard, times
  bool help = false;
  bool version = false;

  // Spec overrides (new runs only).
  scenario::ParamMap params;
  std::optional<std::vector<std::uint64_t>> n_grid;
  std::optional<std::uint64_t> trials;
  std::optional<std::uint64_t> seed;
  std::optional<bool> success_on_accept;
  std::optional<local::ExecMode> mode;
  std::optional<local::WorkloadKind> workload;
  std::optional<std::string> statistic;
  std::optional<local::OptimizationConfig::Backend> backend;
  std::optional<scenario::Execution> execution;
  std::optional<std::string> fault;
  scenario::ParamMap fault_params;
};

/// Strict flag parses (util::parse_uint / parse_nonnegative_double) —
/// a typo'd `--shards -1` must be a usage error, not a 4-billion-shard
/// manifest, and `--timeout 5m` must not silently become 5 seconds.
unsigned parse_unsigned(const std::string& text, const std::string& flag) {
  const std::optional<std::uint64_t> value = util::parse_uint(text);
  if (!value) {
    throw std::runtime_error(flag + " expects a non-negative integer, "
                             "got '" + text + "'");
  }
  if (*value > 1000000) {
    throw std::runtime_error(flag + " value " + text +
                             " is implausibly large");
  }
  return static_cast<unsigned>(*value);
}

double parse_seconds(const std::string& text, const std::string& flag) {
  const std::optional<double> value = util::parse_nonnegative_double(text);
  if (!value) {
    throw std::runtime_error(flag + " expects a non-negative number, "
                             "got '" + text + "'");
  }
  return *value;
}

bool parse_args(int argc, char** argv, Options& options, std::string& error) {
  auto next_value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      error = flag + " needs a value";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--scenario") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.scenario_name = value;
    } else if (arg == "--spec") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.spec_file = value;
    } else if (arg == "--resume") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.resume_dir = value;
    } else if (arg == "--shards") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.shards = parse_unsigned(value, arg);
      if (options.shards == 0) {
        error = "--shards needs a positive shard count";
        return false;
      }
    } else if (arg == "--run-dir") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.run_dir = value;
    } else if (arg == "--transport") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.transport = value;
      if (options.transport != "local" && options.transport != "ssh") {
        error = "--transport expects local|ssh";
        return false;
      }
    } else if (arg == "--ssh-template") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.ssh_template = value;
    } else if (arg == "--remote-sweep") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.remote_sweep = value;
    } else if (arg == "--sweep-bin") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.sweep_bin = value;
    } else if (arg == "--sweep-threads") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.sweep_threads = parse_unsigned(value, arg);
    } else if (arg == "--jobs") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.supervisor.max_parallel = parse_unsigned(value, arg);
    } else if (arg == "--timeout") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.supervisor.timeout_seconds = parse_seconds(value, arg);
    } else if (arg == "--retries") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.supervisor.max_attempts = parse_unsigned(value, arg);
      if (options.supervisor.max_attempts == 0) {
        error = "--retries needs at least one attempt";
        return false;
      }
    } else if (arg == "--backoff-ms") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.supervisor.backoff_ms = parse_seconds(value, arg);
    } else if (arg == "--out") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.out_file = value;
    } else if (arg == "--trace") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.trace_file = value;
    } else if (arg == "--progress") {
      options.supervisor.progress = true;
    } else if (arg == "--cache") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.cache_dir = value;
    } else if (arg == "--help") {
      options.help = true;
    } else if (arg == "--version") {
      options.version = true;
    } else if (arg == "--inject-fail") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string text = value;
      const std::size_t colon = text.find(':');
      const unsigned shard = parse_unsigned(text.substr(0, colon), arg);
      const unsigned times =
          colon == std::string::npos
              ? 1
              : parse_unsigned(text.substr(colon + 1), arg);
      options.inject_fail = {shard, times};
    } else if (arg == "--param") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string text = value;
      const std::size_t eq = text.find('=');
      if (eq == std::string::npos) {
        error = "--param expects k=v, got '" + text + "'";
        return false;
      }
      const std::optional<double> param_value =
          util::parse_finite_double(text.substr(eq + 1));
      if (!param_value) {
        error = "--param " + text + " has a malformed numeric value";
        return false;
      }
      options.params[text.substr(0, eq)] = *param_value;
    } else if (arg == "--n") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      std::vector<std::uint64_t> grid;
      for (const std::string& part : util::split(value, ',')) {
        const std::optional<std::uint64_t> n = util::parse_uint(part);
        if (!n) {
          error = "--n expects non-negative integers, got '" + part + "'";
          return false;
        }
        grid.push_back(*n);
      }
      options.n_grid = std::move(grid);
    } else if (arg == "--trials") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<std::uint64_t> trials = util::parse_uint(value);
      if (!trials) {
        error = std::string("--trials expects a non-negative integer, "
                            "got '") + value + "'";
        return false;
      }
      options.trials = *trials;
    } else if (arg == "--seed") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<std::uint64_t> seed = util::parse_uint(value);
      if (!seed) {
        error = std::string("--seed expects a non-negative integer, "
                            "got '") + value + "'";
        return false;
      }
      options.seed = *seed;
    } else if (arg == "--workload") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<local::WorkloadKind> kind =
          local::workload_from_string(value);
      if (!kind) {
        error = "--workload expects success|value|counter";
        return false;
      }
      options.workload = *kind;
    } else if (arg == "--statistic") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.statistic = value;
    } else if (arg == "--success") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string side = value;
      if (side != "accept" && side != "reject") {
        error = "--success expects accept|reject";
        return false;
      }
      options.success_on_accept = side == "accept";
    } else if (arg == "--mode") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string mode = value;
      if (mode == "balls") {
        options.mode = local::ExecMode::kBalls;
      } else if (mode == "messages") {
        options.mode = local::ExecMode::kMessages;
      } else if (mode == "two-phase") {
        options.mode = local::ExecMode::kTwoPhase;
      } else {
        error = "--mode expects balls|messages|two-phase";
        return false;
      }
    } else if (arg == "--backend") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<local::OptimizationConfig::Backend> backend =
          local::backend_from_string(value);
      if (!backend) {
        error = std::string("--backend expects "
                            "auto|naive|batched|vectorized, got '") +
                value + "'";
        return false;
      }
      options.backend = *backend;
    } else if (arg == "--execution") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<scenario::Execution> execution =
          scenario::execution_from_string(value);
      if (!execution) {
        error = std::string("--execution expects "
                            "auto|materialized|implicit, got '") +
                value + "'";
        return false;
      }
      options.execution = *execution;
    } else if (arg == "--fault") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.fault = value;
    } else if (arg == "--fault-param") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string text = value;
      const std::size_t eq = text.find('=');
      if (eq == std::string::npos) {
        error = "--fault-param expects k=v, got '" + text + "'";
        return false;
      }
      const std::optional<double> param_value =
          util::parse_finite_double(text.substr(eq + 1));
      if (!param_value) {
        error = "--fault-param " + text + " has a malformed numeric value";
        return false;
      }
      options.fault_params[text.substr(0, eq)] = *param_value;
    } else {
      error = "unknown flag '" + arg + "'";
      return false;
    }
  }
  return true;
}

void apply_overrides(const Options& options, scenario::ScenarioSpec& spec) {
  for (const auto& [key, value] : options.params) spec.params[key] = value;
  if (options.n_grid) spec.n_grid = *options.n_grid;
  if (options.trials) spec.trials = *options.trials;
  if (options.seed) spec.base_seed = *options.seed;
  if (options.success_on_accept) {
    spec.success_on_accept = *options.success_on_accept;
  }
  if (options.mode) spec.mode = *options.mode;
  if (options.workload) spec.workload = *options.workload;
  if (options.statistic) spec.statistic = *options.statistic;
  if (options.backend) spec.backend = *options.backend;
  if (options.execution) spec.execution = *options.execution;
  if (options.fault) spec.fault = *options.fault;
  for (const auto& [key, value] : options.fault_params) {
    spec.fault_params[key] = value;
  }
}

/// The lnc_sweep next to this binary — shards run the same build by
/// default, which is what the bit-identity guarantee assumes.
std::string default_sweep_binary(const char* argv0) {
  std::error_code ec;
  std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) self = argv0;
  const std::filesystem::path dir = self.parent_path();
  if (dir.empty()) return "lnc_sweep";  // bare argv0: rely on PATH
  return (dir / "lnc_sweep").string();
}

std::unique_ptr<orchestrate::Transport> make_transport(
    const Options& options, const char* argv0, std::string& error) {
  if (options.transport == "ssh") {
    if (!options.ssh_template) {
      error = "--transport ssh needs --ssh-template";
      return nullptr;
    }
    return std::make_unique<orchestrate::SshTransport>(
        *options.ssh_template, options.remote_sweep);
  }
  const std::string binary = options.sweep_bin
                                 ? *options.sweep_bin
                                 : default_sweep_binary(argv0);
  return std::make_unique<orchestrate::LocalProcessTransport>(binary);
}

int report_outcome(const orchestrate::RunManifest& manifest,
                   const orchestrate::LaunchOutcome& outcome,
                   const Options& options) {
  for (const std::string& warning : outcome.warnings) {
    std::cerr << "warning: " << warning << "\n";
  }
  if (!outcome.ok) {
    std::cerr << "launch failed: " << outcome.error << "\n";
    for (const unsigned shard : outcome.failed_shards) {
      const orchestrate::ShardRecord& record = manifest.shards[shard];
      std::cerr << "  shard " << shard << ": " << to_string(record.state)
                << " after " << record.attempts << " attempt(s)";
      if (!record.error.empty()) std::cerr << " — " << record.error;
      std::cerr << " (log: " << manifest.log_path(shard) << ")\n";
    }
    std::cerr << "resume with: lnc_launch --resume " << manifest.run_dir
              << "\n";
    return 1;
  }

  std::cout << "=== " << outcome.merged.scenario << " (merged from "
            << manifest.shard_count << " shards, run dir "
            << manifest.run_dir << ") ===\n";
  scenario::to_table(outcome.merged).print(std::cout);
  for (const std::string& line : scenario::summary_lines(outcome.merged)) {
    std::cout << line << "\n";
  }
  if (options.out_file) {
    // Same contract as lnc_sweep --out: atomic, no silent partial files.
    const std::string write_error =
        scenario::write_json_file(*options.out_file, outcome.merged);
    if (!write_error.empty()) {
      std::cerr << write_error << "\n";
      return 1;
    }
  }
  return 0;
}

/// The same grep-stable decision line lnc_sweep --cache prints, so CI
/// and humans can watch cache behaviour identically across both CLIs:
///   cache[name]: outcome=topup trials_reused=30 trials_computed=30 ...
void print_cache_line(const std::string& scenario, const char* outcome,
                      std::uint64_t reused, std::uint64_t computed,
                      const serve::CacheKey& key) {
  std::cout << "cache[" << scenario << "]: outcome=" << outcome
            << " trials_reused=" << reused << " trials_computed="
            << computed << " key=" << key.substr(0, 16)
            << " epoch=" << util::seed_stream_epoch() << "\n";
}

/// Serves a cache hit: same report shape as a merged run, but no fleet
/// ever launches and no run directory is created.
int report_cached(const serve::CacheEntry& entry, const Options& options) {
  std::cout << "=== " << entry.result.scenario << " (served from cache, "
            << entry.spec.trials << " trials, key "
            << entry.key.substr(0, 16) << ") ===\n";
  scenario::to_table(entry.result).print(std::cout);
  for (const std::string& line : scenario::summary_lines(entry.result)) {
    std::cout << line << "\n";
  }
  if (options.out_file) {
    const std::string write_error =
        scenario::write_json_file(*options.out_file, entry.result);
    if (!write_error.empty()) {
      std::cerr << write_error << "\n";
      return 1;
    }
  }
  return 0;
}

/// Stores a freshly merged result under its spec's key — unless the
/// store already covers at least as many trials (a concurrent writer or
/// the resume of a superseded run); fewer-trial entries are replaced.
/// Write-back failure is a warning, never a run failure: the result
/// itself is already merged and reported.
void write_back(const serve::ResultStore& store,
                const scenario::ScenarioSpec& spec,
                const scenario::SweepResult& merged) {
  const serve::CacheKey key = serve::cache_key(spec);
  const std::optional<serve::CacheEntry> existing = store.lookup(key);
  if (existing && existing->spec.trials >= spec.trials) return;
  serve::CacheEntry entry;
  entry.key = key;
  entry.spec = spec;
  entry.result = merged;
  const std::string error = store.store(std::move(entry));
  if (!error.empty()) {
    std::cerr << "warning: cache write-back failed: " << error << "\n";
  } else {
    std::cerr << "cache[" << merged.scenario << "]: stored "
              << spec.trials << " trial(s) under key " << key.substr(0, 16)
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string error;
  try {
    if (!parse_args(argc, argv, options, error)) {
      std::cerr << error << "\n";
      return usage(std::cerr, 2);
    }
  } catch (const std::exception& ex) {
    std::cerr << "bad flag value: " << ex.what() << "\n";
    return usage(std::cerr, 2);
  }
  if (options.help) return usage(std::cout, 0);
  if (options.version) {
    std::cout << "lnc_launch (" << util::build_identity() << ")\n";
    return 0;
  }

  const int mode_count = (options.scenario_name ? 1 : 0) +
                         (options.spec_file ? 1 : 0) +
                         (options.resume_dir ? 1 : 0);
  if (mode_count != 1) {
    std::cerr << "pick exactly one of --scenario, --spec, --resume\n";
    return usage(std::cerr, 2);
  }

  std::unique_ptr<orchestrate::Transport> transport =
      make_transport(options, argv[0], error);
  if (transport == nullptr) {
    std::cerr << error << "\n";
    return usage(std::cerr, 2);
  }
  orchestrate::Transport* effective = transport.get();
  std::unique_ptr<orchestrate::FaultInjectingTransport> injector;
  if (options.inject_fail) {
    injector = std::make_unique<orchestrate::FaultInjectingTransport>(
        *effective, options.inject_fail->first,
        options.inject_fail->second);
    effective = injector.get();
  }

  orchestrate::SupervisorOptions supervisor = options.supervisor;
  supervisor.status = &std::cerr;
  // Tracing captures the fleet's control plane (dispatch / retry / kill /
  // merge); the per-trial work lives in the shard processes, which trace
  // separately via lnc_sweep --trace. Timing-only either way.
  if (options.trace_file) obs::TraceRecorder::instance().enable();

  try {
    std::optional<serve::ResultStore> store;
    if (options.cache_dir) store.emplace(*options.cache_dir);
    // The spec whose key the merged result is stored under; for resumes
    // it is re-read from the run directory's frozen spec.json.
    std::optional<scenario::ScenarioSpec> cache_spec;

    orchestrate::RunManifest manifest;
    if (options.resume_dir) {
      // The spec is frozen in the run directory; accepting overrides
      // here would silently run different parameters than reported.
      const bool has_overrides =
          !options.params.empty() || options.n_grid || options.trials ||
          options.seed || options.success_on_accept || options.mode ||
          options.workload || options.statistic || options.backend ||
          options.execution || options.fault || !options.fault_params.empty() ||
          options.shards != 0 || options.run_dir.has_value();
      if (has_overrides) {
        std::cerr << "--resume re-runs the FROZEN spec in its existing "
                     "directory; --run-dir and spec overrides "
                     "(--param/--n/--trials/--seed/--shards/...) cannot "
                     "change it — plan a new run directory instead\n";
        return usage(std::cerr, 2);
      }
      manifest = orchestrate::load_manifest(
          std::filesystem::absolute(*options.resume_dir).string());
      std::cerr << "resuming '" << manifest.scenario << "' in "
                << manifest.run_dir << " (" << manifest.shard_count
                << " shards)\n";
      if (store) {
        std::string text;
        const std::string read_error =
            util::read_file(manifest.spec_path(), text);
        if (!read_error.empty()) {
          throw std::runtime_error(
              "--cache write-back needs the frozen spec: " + read_error);
        }
        cache_spec = scenario::spec_from_json(text);
      }
    } else {
      scenario::ScenarioSpec spec;
      if (options.scenario_name) {
        const scenario::ScenarioSpec* preset =
            scenario::find_preset(*options.scenario_name);
        if (preset == nullptr) {
          std::cerr << "unknown scenario '" << *options.scenario_name
                    << "' (see lnc_sweep --list)\n";
          return 1;
        }
        spec = *preset;
      } else {
        std::string text;
        const std::string read_error =
            util::read_file(*options.spec_file, text);
        if (!read_error.empty()) {
          std::cerr << read_error << "\n";
          return 1;
        }
        spec = scenario::spec_from_json(text);
      }
      apply_overrides(options, spec);
      if (options.shards == 0) {
        std::cerr << "--shards is required for a new run\n";
        return usage(std::cerr, 2);
      }
      // Absolute, so the ShardJob paths handed to transports really are
      // absolute as documented — an ssh shard must not resolve a
      // relative run dir against its remote login cwd.
      const std::string run_dir =
          std::filesystem::absolute(
              options.run_dir ? *options.run_dir : "lnc-run-" + spec.name)
              .string();
      if (options.transport == "ssh") {
        // Template transports require shell-safe paths
        // (orchestrate::render_template throws on others) — surface that
        // BEFORE plan_run puts anything on disk.
        orchestrate::ShardJob probe;
        probe.shard = 0;
        probe.shard_count = options.shards;
        probe.spec_path = run_dir + "/spec.json";
        probe.output_path = run_dir + "/shard-0.json";
        orchestrate::render_template(*options.ssh_template,
                                     options.remote_sweep, probe);
      }
      std::optional<serve::CacheEntry> entry;
      serve::CacheKey key;
      if (store) {
        key = serve::cache_key(spec);
        std::string diagnostic;
        entry = store->lookup(key, &diagnostic);
        if (!entry && diagnostic != "no entry") {
          std::cerr << "note: cache: " << diagnostic << "\n";
        }
      }
      if (entry && entry->spec.trials >= spec.trials) {
        // Hit: the store already covers the request — serve it, no fleet.
        print_cache_line(spec.name, "hit", entry->spec.trials, 0, key);
        if (entry->spec.trials > spec.trials) {
          std::cerr << "note: serving the cached " << entry->spec.trials
                    << "-trial result, a superset of the requested "
                    << spec.trials << " (aggregates cannot be narrowed)\n";
        }
        if (entry->spec.base_seed != spec.base_seed) {
          std::cerr << "note: served under the entry's canonical seed "
                    << entry->spec.base_seed << ", not the requested "
                    << spec.base_seed << " (the key excludes the seed; "
                    << "the first writer's seed is canonical)\n";
        }
        return report_cached(*entry, options);
      }
      if (entry) {
        // Top-up: the fleet computes only [cached, requested) of the
        // entry's spec (its seed is canonical) and the merge folds the
        // cached prefix in front — bit-identical to a cold fleet run.
        scenario::ScenarioSpec run_spec = entry->spec;
        run_spec.trials = spec.trials;
        if (entry->spec.base_seed != spec.base_seed) {
          std::cerr << "note: topping up under the entry's canonical seed "
                    << entry->spec.base_seed << ", not the requested "
                    << spec.base_seed << "\n";
        }
        unsigned shards = options.shards;
        const std::uint64_t width = spec.trials - entry->spec.trials;
        if (shards > width) {
          shards = static_cast<unsigned>(width);
          std::cerr << "note: only " << width << " trial(s) to top up — "
                    << "using " << shards << " shard(s) instead of "
                    << options.shards << "\n";
        }
        print_cache_line(spec.name, "topup", entry->spec.trials, width,
                         key);
        manifest = orchestrate::plan_topup_run(run_spec, run_dir, shards,
                                               entry->result);
        cache_spec = run_spec;
        std::cerr << "planned " << shards << " top-up shard(s) of '"
                  << spec.name << "' (trials [" << manifest.trial_begin
                  << ", " << manifest.trial_end << ")) in " << run_dir
                  << "\n";
      } else {
        if (store) print_cache_line(spec.name, "miss", 0, spec.trials, key);
        manifest = orchestrate::plan_run(spec, run_dir, options.shards);
        if (store) cache_spec = spec;
        std::cerr << "planned " << options.shards << " shard(s) of '"
                  << spec.name << "' in " << run_dir << "\n";
      }
    }

    orchestrate::LaunchOutcome outcome;
    {
      const obs::Span fleet_span(
          "fleet", obs::span_args("shards", static_cast<std::uint64_t>(
                                                manifest.shard_count)));
      outcome = orchestrate::execute_run(manifest, *effective, supervisor,
                                         options.sweep_threads);
    }
    if (outcome.ok && store && cache_spec) {
      write_back(*store, *cache_spec, outcome.merged);
    }
    int rc = report_outcome(manifest, outcome, options);
    if (options.trace_file) {
      obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
      std::string trace_error;
      if (recorder.write_file(*options.trace_file, &trace_error)) {
        std::cerr << "trace: wrote " << *options.trace_file << " ("
                  << recorder.event_count() << " spans";
        if (recorder.dropped_count() > 0) {
          std::cerr << ", " << recorder.dropped_count() << " dropped";
        }
        std::cerr << ")\n";
      } else {
        std::cerr << "trace: " << trace_error << "\n";
        rc |= 1;
      }
    }
    return rc;
  } catch (const std::exception& ex) {
    std::cerr << ex.what() << "\n";
    return 1;
  }
}
