// lnc_sweep — the declarative experiment driver over the scenario
// registries (src/scenario). Any registered topology x language x
// construction x decider combination runs from flags or a JSON spec; trial
// ranges shard across processes and merge bit-identically.
//
//   lnc_sweep --list
//       Catalogue: registered components (with parameter schemas) and the
//       preset scenarios.
//   lnc_sweep --scenario NAME [overrides]
//       Run a preset (override --n/--trials/--seed/--param freely).
//   lnc_sweep --spec FILE.json [overrides]
//       Run a spec file (see scenarios/*.json for the format).
//   lnc_sweep --topology T --language L --construction C [--decider D] ...
//       Run an ad-hoc scenario assembled from flags.
//   lnc_sweep --all
//       Run every preset (CI trajectory mode).
//   lnc_sweep --merge SHARD.json...
//       Merge shard result files into the full estimate.
//
// Common flags:
//   --param k=v      set a component parameter (repeatable)
//   --n A,B,C        override the n-grid
//   --trials N       override the trial count
//   --seed S         override the base seed
//   --success accept|reject
//   --mode balls|messages|two-phase
//   --backend auto|naive|batched|vectorized  trial-execution backend
//   --execution auto|materialized|implicit   graph representation
//   --shard i/k      run only trial slice i of k (emits a mergeable tally)
//   --threads N      worker threads (0 = hardware concurrency; default 1)
//   --out FILE       also write the result as JSON (shard or complete)
//   --trace FILE     write a Chrome trace-event JSON span profile
//   --progress       live heartbeat lines (throughput / ETA) on stderr
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "scenario/presets.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/spec_json.h"
#include "scenario/sweep.h"
#include "serve/service.h"
#include "stats/threadpool.h"
#include "util/build_info.h"
#include "util/string_util.h"

namespace {

using namespace lnc;

int usage(std::ostream& os, int code) {
  os << "usage: lnc_sweep --list\n"
        "       lnc_sweep --scenario NAME [overrides]\n"
        "       lnc_sweep --spec FILE.json [overrides]\n"
        "       lnc_sweep --topology T --language L --construction C\n"
        "                 [--decider D] [overrides]\n"
        "       lnc_sweep --all [overrides]\n"
        "       lnc_sweep --merge SHARD.json...\n"
        "overrides: --param k=v | --n A,B,C | --trials N | --seed S\n"
        "           --workload success|value|counter | --statistic NAME\n"
        "           --success accept|reject | --mode balls|messages|two-phase\n"
        "           --backend auto|naive|batched|vectorized\n"
        "           --execution auto|materialized|implicit\n"
        "           --fault NAME | --fault-param k=v\n"
        "           --shard i/k | --threads N | --out FILE | --telemetry\n"
        "           --trial-range B:E | --cache DIR | --trace FILE\n"
        "           --progress | --help | --version\n"
        "value/counter workloads measure a registered statistic of the\n"
        "construction's output (mean/stddev via exact sums, or exact\n"
        "integer totals) instead of a success probability; sharded value\n"
        "runs --merge back to the unsharded mean bit for bit.\n"
        "--telemetry adds communication-volume columns (msgs/words/rounds/\n"
        "balls; deterministic across thread counts and shardings) plus a\n"
        "timing line (wall time, arena peak; machine-dependent).\n"
        "--backend picks how trials execute (auto tunes per grid point;\n"
        "all backends produce bit-identical tallies, so forcing one is a\n"
        "performance choice, never a results choice).\n"
        "--execution picks the graph representation: materialized builds\n"
        "the CSR graph, implicit synthesizes neighborhoods on demand\n"
        "(ball-bounded memory — rings at n = 10^8 and beyond), auto\n"
        "materializes small grids and goes implicit past the cap. Both\n"
        "paths are bit-identical and share one cache key.\n"
        "--cache DIR reads/writes the content-addressed result store\n"
        "(src/serve): a repeated query is answered from cache, a raised\n"
        "--trials runs only the missing trial range and merges exactly.\n"
        "--trial-range B:E runs only trials [B, E) — the slice form of\n"
        "--shard, used by cache top-ups and range-partitioned fleets.\n"
        "--trace FILE records hierarchical spans (sweep/row/batch/\n"
        "node-range) as Chrome trace-event JSON — open in Perfetto or\n"
        "chrome://tracing — and adds a `metrics` block (latency\n"
        "histograms) to --out JSON. --progress prints rate-limited\n"
        "heartbeats (trials or nodes done, throughput, ETA) to stderr.\n"
        "Both are timing-only: results are bit-identical with or without\n"
        "them (CI's observability gate enforces this).\n"
        "--fault picks a fault model from the faults registry (see --list):\n"
        "lossy links (drop), crash-stop nodes (crash), per-round edge\n"
        "churn (churn). Faulty runs draw every fault from a dedicated\n"
        "per-trial coin stream, so they stay bit-identical across thread\n"
        "counts, shards, and trial ranges like fault-free runs do.\n"
        "build identity: " << lnc::util::build_identity() << "\n";
  return code;
}

void print_schema(const scenario::ParamSchema& schema) {
  for (const scenario::ParamSpec& spec : schema) {
    std::cout << "      " << spec.name << " = " << spec.default_value;
    if (std::isfinite(spec.min_value) || std::isfinite(spec.max_value)) {
      std::cout << " in [" << spec.min_value << ", " << spec.max_value
                << "]";
    }
    std::cout << "  (" << spec.doc << ")\n";
  }
}

void list_catalogue() {
  std::cout << "topologies ([implicit] = giga-scale on-demand capable):\n";
  for (const auto* entry : scenario::topologies().all()) {
    std::cout << "  " << entry->name
              << (entry->build_implicit ? " [implicit]" : "") << " — "
              << entry->doc << "\n";
    print_schema(entry->schema);
  }
  std::cout << "\nlanguages:\n";
  for (const auto* entry : scenario::languages().all()) {
    std::cout << "  " << entry->name << " — " << entry->doc << "\n";
    print_schema(entry->schema);
  }
  std::cout << "\nconstructions:\n";
  for (const auto* entry : scenario::constructions().all()) {
    std::cout << "  " << entry->name << " — " << entry->doc << "\n";
    print_schema(entry->schema);
  }
  std::cout << "\ndeciders:\n";
  for (const auto* entry : scenario::deciders().all()) {
    std::cout << "  " << entry->name << " — " << entry->doc << "\n";
    print_schema(entry->schema);
  }
  std::cout << "\nstatistics (value/counter workloads):\n";
  for (const auto* entry : scenario::statistics().all()) {
    std::cout << "  " << entry->name
              << (entry->integer_valued ? "" : " (value-only)") << " — "
              << entry->doc << "\n";
  }
  std::cout << "\nfaults (--fault / --fault-param):\n";
  for (const auto* entry : scenario::faults().all()) {
    std::cout << "  " << entry->name << " — " << entry->doc << "\n";
    print_schema(entry->schema);
  }
  std::cout << "\nscenarios:\n";
  for (const scenario::ScenarioSpec& spec : scenario::preset_scenarios()) {
    std::cout << "  " << spec.name << " — " << spec.topology << " / "
              << spec.language << " / " << spec.construction << " / "
              << spec.decider;
    if (spec.workload != local::WorkloadKind::kSuccess) {
      std::cout << " [" << local::to_string(spec.workload) << ":"
                << spec.statistic << "]";
    }
    std::cout << "\n      " << spec.doc << "\n";
  }
}

struct Options {
  bool list = false;
  bool all = false;
  bool help = false;
  bool version = false;
  std::optional<std::string> scenario_name;
  std::optional<std::string> spec_file;
  std::vector<std::string> merge_files;

  // Ad-hoc component flags.
  std::optional<std::string> topology;
  std::optional<std::string> language;
  std::optional<std::string> construction;
  std::optional<std::string> decider;

  // Overrides.
  scenario::ParamMap params;
  std::optional<std::vector<std::uint64_t>> n_grid;
  std::optional<std::uint64_t> trials;
  std::optional<std::uint64_t> seed;
  std::optional<bool> success_on_accept;
  std::optional<local::ExecMode> mode;
  std::optional<local::WorkloadKind> workload;
  std::optional<std::string> statistic;
  std::optional<local::OptimizationConfig::Backend> backend;
  std::optional<scenario::Execution> execution;
  std::optional<std::string> fault;
  scenario::ParamMap fault_params;

  unsigned shard = 0;
  unsigned shard_count = 1;
  std::optional<local::TrialRange> trial_range;
  std::optional<std::string> cache_dir;
  unsigned threads = 1;
  bool telemetry = false;
  std::optional<std::string> out_file;
  std::optional<std::string> trace_file;
  bool progress = false;
};

bool parse_args(int argc, char** argv, Options& options, std::string& error) {
  auto next_value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      error = flag + " needs a value";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--all") {
      options.all = true;
    } else if (arg == "--scenario") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.scenario_name = value;
    } else if (arg == "--spec") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.spec_file = value;
    } else if (arg == "--merge") {
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        options.merge_files.emplace_back(argv[++i]);
      }
      if (options.merge_files.empty()) {
        error = "--merge needs at least one shard file";
        return false;
      }
    } else if (arg == "--topology") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.topology = value;
    } else if (arg == "--language") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.language = value;
    } else if (arg == "--construction") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.construction = value;
    } else if (arg == "--decider") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.decider = value;
    } else if (arg == "--param") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string text = value;
      const std::size_t eq = text.find('=');
      if (eq == std::string::npos) {
        error = "--param expects k=v, got '" + text + "'";
        return false;
      }
      const std::optional<double> param_value =
          util::parse_finite_double(text.substr(eq + 1));
      if (!param_value) {
        error = "--param " + text + " has a malformed numeric value";
        return false;
      }
      options.params[text.substr(0, eq)] = *param_value;
    } else if (arg == "--n") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      std::vector<std::uint64_t> grid;
      for (const std::string& part : util::split(value, ',')) {
        const std::optional<std::uint64_t> n = util::parse_uint(part);
        if (!n) {
          error = "--n expects non-negative integers, got '" + part + "'";
          return false;
        }
        grid.push_back(*n);
      }
      options.n_grid = std::move(grid);
    } else if (arg == "--trials") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<std::uint64_t> trials = util::parse_uint(value);
      if (!trials) {
        error = std::string("--trials expects a non-negative integer, "
                            "got '") + value + "'";
        return false;
      }
      options.trials = *trials;
    } else if (arg == "--seed") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<std::uint64_t> seed = util::parse_uint(value);
      if (!seed) {
        error = std::string("--seed expects a non-negative integer, "
                            "got '") + value + "'";
        return false;
      }
      options.seed = *seed;
    } else if (arg == "--workload") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<local::WorkloadKind> kind =
          local::workload_from_string(value);
      if (!kind) {
        error = "--workload expects success|value|counter";
        return false;
      }
      options.workload = *kind;
    } else if (arg == "--statistic") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.statistic = value;
    } else if (arg == "--success") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string side = value;
      if (side != "accept" && side != "reject") {
        error = "--success expects accept|reject";
        return false;
      }
      options.success_on_accept = side == "accept";
    } else if (arg == "--mode") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string mode = value;
      if (mode == "balls") {
        options.mode = local::ExecMode::kBalls;
      } else if (mode == "messages") {
        options.mode = local::ExecMode::kMessages;
      } else if (mode == "two-phase") {
        options.mode = local::ExecMode::kTwoPhase;
      } else {
        error = "--mode expects balls|messages|two-phase";
        return false;
      }
    } else if (arg == "--backend") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<local::OptimizationConfig::Backend> backend =
          local::backend_from_string(value);
      if (!backend) {
        error = std::string("--backend expects "
                            "auto|naive|batched|vectorized, got '") +
                value + "'";
        return false;
      }
      options.backend = *backend;
    } else if (arg == "--execution") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<scenario::Execution> execution =
          scenario::execution_from_string(value);
      if (!execution) {
        error = std::string("--execution expects "
                            "auto|materialized|implicit, got '") +
                value + "'";
        return false;
      }
      options.execution = *execution;
    } else if (arg == "--fault") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.fault = value;
    } else if (arg == "--fault-param") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string text = value;
      const std::size_t eq = text.find('=');
      if (eq == std::string::npos) {
        error = "--fault-param expects k=v, got '" + text + "'";
        return false;
      }
      const std::optional<double> param_value =
          util::parse_finite_double(text.substr(eq + 1));
      if (!param_value) {
        error = "--fault-param " + text + " has a malformed numeric value";
        return false;
      }
      options.fault_params[text.substr(0, eq)] = *param_value;
    } else if (arg == "--shard") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string text = value;
      const std::size_t slash = text.find('/');
      if (slash == std::string::npos) {
        error = "--shard expects i/k, got '" + text + "'";
        return false;
      }
      // Strict parses: std::stoul would wrap "-1" to ULONG_MAX instead
      // of rejecting it.
      const std::optional<std::uint64_t> index =
          util::parse_uint(text.substr(0, slash));
      const std::optional<std::uint64_t> count =
          util::parse_uint(text.substr(slash + 1));
      if (!index || !count || *index > 1000000 || *count > 1000000) {
        error = "--shard expects non-negative integers i/k, got '" + text +
                "'";
        return false;
      }
      options.shard = static_cast<unsigned>(*index);
      options.shard_count = static_cast<unsigned>(*count);
      // Diagnose precisely — the launch supervisor keys off this exit
      // code, and "out of range" alone buries which bound was violated.
      if (options.shard_count == 0) {
        error = "--shard " + text + " is invalid: the shard count k must "
                "be at least 1";
        return false;
      }
      if (options.shard >= options.shard_count) {
        error = "--shard " + text + " is invalid: the shard index i must "
                "satisfy i < k (indices are 0-based, so the last shard "
                "of k=" + std::to_string(options.shard_count) + " is " +
                std::to_string(options.shard_count - 1) + ")";
        return false;
      }
    } else if (arg == "--trial-range") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::string text = value;
      const std::size_t colon = text.find(':');
      if (colon == std::string::npos) {
        error = "--trial-range expects B:E, got '" + text + "'";
        return false;
      }
      const std::optional<std::uint64_t> begin =
          util::parse_uint(text.substr(0, colon));
      const std::optional<std::uint64_t> end =
          util::parse_uint(text.substr(colon + 1));
      if (!begin || !end) {
        error = "--trial-range expects non-negative integers B:E, got '" +
                text + "'";
        return false;
      }
      if (*begin >= *end) {
        error = "--trial-range " + text +
                " is empty: B must be strictly below E";
        return false;
      }
      options.trial_range = local::TrialRange{*begin, *end};
    } else if (arg == "--cache") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.cache_dir = value;
    } else if (arg == "--threads") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      const std::optional<std::uint64_t> threads = util::parse_uint(value);
      if (!threads || *threads > 4096) {
        error = std::string("--threads expects a non-negative integer "
                            "(<= 4096), got '") + value + "'";
        return false;
      }
      options.threads = static_cast<unsigned>(*threads);
    } else if (arg == "--telemetry") {
      options.telemetry = true;
    } else if (arg == "--out") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.out_file = value;
    } else if (arg == "--trace") {
      if ((value = next_value(i, arg)) == nullptr) return false;
      options.trace_file = value;
    } else if (arg == "--progress") {
      options.progress = true;
    } else if (arg == "--help") {
      options.help = true;
    } else if (arg == "--version") {
      options.version = true;
    } else {
      error = "unknown flag '" + arg + "'";
      return false;
    }
  }
  if (options.trial_range && options.shard_count > 1) {
    error = "--trial-range and --shard are mutually exclusive (a range IS "
            "an explicit shard)";
    return false;
  }
  if (options.cache_dir &&
      (options.shard_count > 1 || options.trial_range ||
       !options.merge_files.empty())) {
    error = "--cache serves complete results only — it cannot be combined "
            "with --shard, --trial-range, or --merge";
    return false;
  }
  return true;
}

void apply_overrides(const Options& options, scenario::ScenarioSpec& spec) {
  for (const auto& [key, value] : options.params) spec.params[key] = value;
  if (options.n_grid) spec.n_grid = *options.n_grid;
  if (options.trials) spec.trials = *options.trials;
  if (options.seed) spec.base_seed = *options.seed;
  if (options.success_on_accept) {
    spec.success_on_accept = *options.success_on_accept;
  }
  if (options.mode) spec.mode = *options.mode;
  if (options.workload) spec.workload = *options.workload;
  if (options.statistic) spec.statistic = *options.statistic;
  if (options.backend) spec.backend = *options.backend;
  if (options.execution) spec.execution = *options.execution;
  if (options.fault) spec.fault = *options.fault;
  for (const auto& [key, value] : options.fault_params) {
    spec.fault_params[key] = value;
  }
}

/// The --out path for one scenario: unchanged for a single run, suffixed
/// with the scenario name for multi-scenario runs (--all), so later runs
/// do not overwrite earlier ones.
std::string out_path_for(const std::string& out_file, const std::string& name,
                         bool multiple) {
  if (!multiple) return out_file;
  const std::size_t dot = out_file.rfind('.');
  if (dot == std::string::npos || out_file.find('/', dot) != std::string::npos) {
    return out_file + "-" + name;
  }
  return out_file.substr(0, dot) + "-" + name + out_file.substr(dot);
}

/// Writes the result JSON to `path` atomically (scenario::write_json_file)
/// and reports failures on stderr. A failed --out MUST exit nonzero with
/// no file left at `path`: the launch supervisor (tools/lnc_launch.cpp)
/// keys off the exit code, and a partial file would poison the merge.
bool write_result_file(const std::string& path,
                       const scenario::SweepResult& result) {
  const std::string error = scenario::write_json_file(path, result);
  if (!error.empty()) {
    std::cerr << error << "\n";
    return false;
  }
  return true;
}

/// Two summary lines per result: the deterministic counters on one (CI
/// greps and diffs this line across thread counts and shardings), the
/// machine-dependent timing on the other.
void print_telemetry_summary(std::ostream& os,
                             const scenario::SweepResult& result) {
  const local::Telemetry total = scenario::result_telemetry(result);
  os << "telemetry[" << result.scenario
     << "]: messages=" << total.messages_sent
     << " words=" << total.words_sent << " rounds=" << total.rounds_executed
     << " ball_expansions=" << total.ball_expansions
     << " messages_dropped=" << total.messages_dropped
     << " nodes_crashed=" << total.nodes_crashed
     << " edges_churned=" << total.edges_churned << "\n";
  // cpu-trial-secs is the SUM of per-trial wall time across workers
  // (telemetry.wall_seconds) — on an 8-thread run it reads ~8x the true
  // elapsed time; wall-secs is the real elapsed wall-clock summed over
  // the rows' single per-grid-point measurements.
  double elapsed = 0.0;
  for (const scenario::SweepRow& row : result.rows) {
    elapsed += row.elapsed_seconds;
  }
  std::ostringstream timing;
  timing.precision(3);
  timing << std::fixed << "timing[" << result.scenario
         << "]: cpu-trial-secs=" << total.wall_seconds
         << " wall-secs=" << elapsed
         << " arena_peak_bytes=" << total.arena_peak_bytes;
  os << timing.str() << "\n\n";
}

/// Owns the global node-granularity heartbeat for one run and guarantees
/// uninstall-before-destroy on every exit path.
struct NodeProgressGuard {
  std::optional<obs::Progress> heartbeat;
  ~NodeProgressGuard() {
    if (heartbeat) {
      obs::install_node_progress(nullptr);
      heartbeat->finish();
    }
  }
};

int run_one(const scenario::ScenarioSpec& spec, const Options& options,
            bool multiple_specs, const stats::ThreadPool* pool,
            serve::SweepService* service, std::ostream& os) {
  const std::string error = scenario::validate(spec);
  if (!error.empty()) {
    std::cerr << "invalid scenario '" << spec.name << "': " << error << "\n";
    return 1;
  }
  // Node-granularity heartbeat (implicit streaming loops tick it through
  // the global channel); trial-granularity progress is wired through
  // SweepOptions below. Both print to stderr — stdout owns the tables.
  NodeProgressGuard node_progress;
  if (options.progress) {
    node_progress.heartbeat.emplace("nodes:" + spec.name, 0, "nodes",
                                    &std::cerr);
    obs::install_node_progress(&*node_progress.heartbeat);
  }
  if (options.trial_range && options.trial_range->end > spec.trials) {
    std::cerr << "--trial-range [" << options.trial_range->begin << ", "
              << options.trial_range->end << ") exceeds the spec's "
              << spec.trials << " trials\n";
    return 1;
  }
  scenario::SweepResult result;
  if (service != nullptr) {
    // Read-through/write-back against the content-addressed store: a
    // repeated run is a hit, a raised --trials computes only the delta.
    serve::QueryOutcome outcome;
    try {
      outcome = service->query(spec);
    } catch (const std::exception& ex) {
      std::cerr << ex.what() << "\n";
      return 1;
    }
    for (const std::string& note : outcome.notes) {
      std::cerr << "note: " << note << "\n";
    }
    // Grep-stable (CI's cache gate keys off this line).
    os << "cache[" << spec.name << "]: outcome="
       << serve::to_string(outcome.outcome)
       << " trials_reused=" << outcome.trials_reused
       << " trials_computed=" << outcome.trials_computed << " key="
       << outcome.key.substr(0, 16) << " epoch=" << util::seed_stream_epoch()
       << "\n";
    result = std::move(outcome.result);
  } else {
    const scenario::CompiledScenario compiled = scenario::compile(spec);
    scenario::SweepOptions sweep_options;
    sweep_options.shard = options.shard;
    sweep_options.shard_count = options.shard_count;
    sweep_options.trial_range = options.trial_range;
    sweep_options.pool = pool;
    std::optional<obs::Progress> trial_progress;
    if (options.progress) {
      const local::TrialRange range =
          options.trial_range
              ? *options.trial_range
              : local::shard_range(spec.trials, options.shard,
                                   options.shard_count);
      trial_progress.emplace(
          "sweep:" + spec.name,
          range.count() * compiled.points().size(), "trials", &std::cerr);
      sweep_options.progress = &*trial_progress;
    }
    result = scenario::run_sweep(compiled, sweep_options);
    if (trial_progress) trial_progress->finish();
  }

  os << "=== " << spec.name << " — " << spec.topology << " / "
     << spec.language << " / " << spec.construction << " / " << spec.decider;
  if (spec.workload == local::WorkloadKind::kSuccess) {
    os << " (success = " << (spec.success_on_accept ? "accept" : "reject");
  } else {
    os << " (" << local::to_string(spec.workload) << " of "
       << spec.statistic;
  }
  os << ", seed = " << spec.base_seed;
  if (options.shard_count > 1) {
    os << ", shard " << options.shard << "/" << options.shard_count;
  }
  if (options.trial_range) {
    os << ", trials [" << options.trial_range->begin << ", "
       << options.trial_range->end << ")";
  }
  os << ") ===\n";
  if (!spec.doc.empty()) os << spec.doc << "\n";
  scenario::to_table(result, options.telemetry).print(os);
  for (const std::string& line : scenario::summary_lines(result)) {
    os << line << "\n";
  }
  os << "\n";
  if (options.telemetry) print_telemetry_summary(os, result);

  if (options.out_file) {
    const std::string path =
        out_path_for(*options.out_file, spec.name, multiple_specs);
    if (!write_result_file(path, result)) return 1;
  }
  return 0;
}

int merge_mode(const Options& options) {
  scenario::SweepResult merged;
  std::vector<std::string> warnings;
  try {
    // The same gather step the distributed launcher runs
    // (scenario::merge_sweep_files — src/orchestrate reuses it).
    merged = scenario::merge_sweep_files(options.merge_files, &warnings);
  } catch (const std::exception& ex) {
    for (const std::string& warning : warnings) {
      std::cerr << "warning: " << warning << "\n";
    }
    std::cerr << ex.what() << "\n";
    return 1;
  }
  for (const std::string& warning : warnings) {
    std::cerr << "warning: " << warning << "\n";
  }
  std::cout << "=== " << merged.scenario << " (merged from "
            << options.merge_files.size() << " shard files) ===\n";
  scenario::to_table(merged, options.telemetry).print(std::cout);
  for (const std::string& line : scenario::summary_lines(merged)) {
    std::cout << line << "\n";
  }
  if (options.telemetry) {
    std::cout << "\n";
    print_telemetry_summary(std::cout, merged);
  }
  if (options.out_file) {
    if (!write_result_file(*options.out_file, merged)) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string error;
  try {
    if (!parse_args(argc, argv, options, error)) {
      std::cerr << error << "\n";
      return usage(std::cerr, 2);
    }
  } catch (const std::exception& ex) {
    // std::stod/std::stoull throw on malformed numeric flag values.
    std::cerr << "bad flag value: " << ex.what() << "\n";
    return usage(std::cerr, 2);
  }
  if (options.help) return usage(std::cout, 0);
  if (options.version) {
    std::cout << "lnc_sweep (" << lnc::util::build_identity() << ")\n";
    return 0;
  }
  if (options.list) {
    list_catalogue();
    return 0;
  }
  if (!options.merge_files.empty()) return merge_mode(options);

  std::vector<scenario::ScenarioSpec> specs;
  try {
    if (options.all) {
      specs = scenario::preset_scenarios();
    } else if (options.scenario_name) {
      const scenario::ScenarioSpec* preset =
          scenario::find_preset(*options.scenario_name);
      if (preset == nullptr) {
        std::cerr << "unknown scenario '" << *options.scenario_name
                  << "' (see --list)\n";
        return 1;
      }
      specs.push_back(*preset);
    } else if (options.spec_file) {
      std::ifstream in(*options.spec_file);
      if (!in) {
        std::cerr << "cannot read '" << *options.spec_file << "'\n";
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      specs.push_back(scenario::spec_from_json(text.str()));
    } else if (options.topology || options.language || options.construction) {
      scenario::ScenarioSpec spec;
      spec.name = "adhoc";
      if (options.topology) spec.topology = *options.topology;
      if (options.language) spec.language = *options.language;
      if (options.construction) spec.construction = *options.construction;
      if (options.decider) spec.decider = *options.decider;
      if (!options.n_grid) spec.n_grid = {64};
      specs.push_back(std::move(spec));
    } else {
      return usage(std::cerr, 2);
    }
  } catch (const std::exception& ex) {
    std::cerr << ex.what() << "\n";
    return 1;
  }

  if (options.trace_file) {
    // --trace turns on both pillars that cost anything: span recording
    // and the metrics registries (which then land as the result JSON's
    // `metrics` block). Results stay bit-identical either way — the CI
    // observability gate holds lnc_sweep to that.
    obs::TraceRecorder::instance().enable();
    obs::set_metrics_enabled(true);
  }

  std::optional<stats::ThreadPool> pool;
  if (options.threads != 1) pool.emplace(options.threads);

  std::optional<serve::SweepService> service;
  if (options.cache_dir) {
    try {
      service.emplace(*options.cache_dir,
                      serve::ServiceOptions{options.threads});
    } catch (const std::exception& ex) {
      std::cerr << ex.what() << "\n";
      return 1;
    }
  }

  int rc = 0;
  for (scenario::ScenarioSpec& spec : specs) {
    apply_overrides(options, spec);
    rc |= run_one(spec, options, specs.size() > 1, pool ? &*pool : nullptr,
                  service ? &*service : nullptr, std::cout);
  }

  if (options.trace_file) {
    // Workers are idle by now (the pool outlives every sweep), so the
    // buffers are quiescent and the write is race-free.
    const obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
    std::string trace_error;
    if (!recorder.write_file(*options.trace_file, &trace_error)) {
      std::cerr << "cannot write trace: " << trace_error << "\n";
      rc |= 1;
    } else {
      std::cerr << "trace: wrote " << *options.trace_file << " ("
                << recorder.event_count() << " spans";
      if (recorder.dropped_count() > 0) {
        std::cerr << ", " << recorder.dropped_count() << " dropped";
      }
      std::cerr << ")\n";
    }
  }
  return rc;
}
