#!/usr/bin/env python3
"""CI telemetry gate: deterministic communication counters must be nonzero
and bit-identical across lnc_sweep result files.

Usage: check_telemetry.py RESULT.json RESULT.json...

Each file is an lnc_sweep --out file (unsharded or merged: every row must
cover its full trial range). The gate checks, per row, that the
deterministic counters (messages, words, rounds, ball_expansions) are
nonzero and agree across every file — the contract that makes
communication-volume trajectories comparable across thread counts and
shard layouts. Timing fields (wall_seconds, arena_peak_bytes) are
machine-dependent and deliberately ignored.
"""
import json
import sys

DETERMINISTIC = ("messages", "words", "rounds", "ball_expansions")
# Counters the smoke scenario must actually exercise; ball_expansions is
# nonzero for ball-mode runs but legitimately zero for pure engine sweeps.
MUST_BE_NONZERO = ("messages", "words", "rounds")


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    rows = data["rows"]
    for row in rows:
        if row["trials"] != row["total_trials"]:
            raise SystemExit(
                f"{path}: row n={row['n']} covers {row['trials']} of "
                f"{row['total_trials']} trials — pass a complete "
                "(unsharded or merged) result to the gate")
        if "telemetry" not in row:
            raise SystemExit(f"{path}: row n={row['n']} has no telemetry "
                             "block (binary built without --telemetry "
                             "support?)")
    return data["scenario"], rows


def main(argv):
    if len(argv) < 3:
        raise SystemExit(__doc__)
    reference_path = argv[1]
    scenario, reference = load_rows(reference_path)
    for row in reference:
        for key in MUST_BE_NONZERO:
            if row["telemetry"][key] == 0:
                raise SystemExit(
                    f"{reference_path}: {scenario} n={row['n']}: "
                    f"deterministic counter '{key}' is zero — telemetry "
                    "is not being accumulated")
    for path in argv[2:]:
        other_scenario, other = load_rows(path)
        if other_scenario != scenario or len(other) != len(reference):
            raise SystemExit(f"{path}: result of a different sweep "
                             f"({other_scenario!r} vs {scenario!r})")
        for ref_row, row in zip(reference, other):
            for key in DETERMINISTIC:
                want, got = ref_row["telemetry"][key], row["telemetry"][key]
                if want != got:
                    raise SystemExit(
                        f"telemetry mismatch: {scenario} n={row['n']} "
                        f"counter '{key}': {reference_path} has {want}, "
                        f"{path} has {got}")
    names = ", ".join(argv[2:])
    print(f"telemetry gate OK: {scenario} deterministic counters nonzero "
          f"and identical across {reference_path} and {names}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
