#!/usr/bin/env python3
"""CI telemetry gate: deterministic communication counters must be nonzero
and bit-identical across lnc_sweep result files.

Usage: check_telemetry.py [--require-fault] RESULT.json RESULT.json...

Each file is an lnc_sweep --out file (unsharded or merged: every row must
cover its full trial range). The gate checks, per row, that the
deterministic counters (messages, words, rounds, ball_expansions, and the
fault counters messages_dropped / nodes_crashed / edges_churned) are
nonzero and agree across every file — the contract that makes
communication-volume trajectories comparable across thread counts and
shard layouts. Fault counters are emitted only when nonzero, so absent
keys read as 0; with --require-fault the reference must additionally show
fault activity (some fault counter nonzero on every row), the CI check
that a faulty sweep actually injected faults identically at every thread
count. Timing fields (wall_seconds, arena_peak_bytes) are
machine-dependent and deliberately ignored.
"""
import json
import sys

DETERMINISTIC = ("messages", "words", "rounds", "ball_expansions",
                 "messages_dropped", "nodes_crashed", "edges_churned")
# Counters the smoke scenario must actually exercise; ball_expansions is
# nonzero for ball-mode runs but legitimately zero for pure engine sweeps.
MUST_BE_NONZERO = ("messages", "words", "rounds")
# At least one of these must be nonzero per row under --require-fault.
FAULT_COUNTERS = ("messages_dropped", "nodes_crashed", "edges_churned")


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    rows = data["rows"]
    for row in rows:
        if row["trials"] != row["total_trials"]:
            raise SystemExit(
                f"{path}: row n={row['n']} covers {row['trials']} of "
                f"{row['total_trials']} trials — pass a complete "
                "(unsharded or merged) result to the gate")
        if "telemetry" not in row:
            raise SystemExit(f"{path}: row n={row['n']} has no telemetry "
                             "block (binary built without --telemetry "
                             "support?)")
    return data["scenario"], rows


def main(argv):
    require_fault = "--require-fault" in argv
    argv = [arg for arg in argv if arg != "--require-fault"]
    if len(argv) < 3:
        raise SystemExit(__doc__)
    reference_path = argv[1]
    scenario, reference = load_rows(reference_path)
    for row in reference:
        for key in MUST_BE_NONZERO:
            if row["telemetry"].get(key, 0) == 0:
                raise SystemExit(
                    f"{reference_path}: {scenario} n={row['n']}: "
                    f"deterministic counter '{key}' is zero — telemetry "
                    "is not being accumulated")
        if require_fault and \
                all(row["telemetry"].get(key, 0) == 0
                    for key in FAULT_COUNTERS):
            raise SystemExit(
                f"{reference_path}: {scenario} n={row['n']}: every fault "
                "counter is zero — the fault model never fired")
    for path in argv[2:]:
        other_scenario, other = load_rows(path)
        if other_scenario != scenario or len(other) != len(reference):
            raise SystemExit(f"{path}: result of a different sweep "
                             f"({other_scenario!r} vs {scenario!r})")
        for ref_row, row in zip(reference, other):
            for key in DETERMINISTIC:
                want = ref_row["telemetry"].get(key, 0)
                got = row["telemetry"].get(key, 0)
                if want != got:
                    raise SystemExit(
                        f"telemetry mismatch: {scenario} n={row['n']} "
                        f"counter '{key}': {reference_path} has {want}, "
                        f"{path} has {got}")
    names = ", ".join(argv[2:])
    suffix = " (fault counters active)" if require_fault else ""
    print(f"telemetry gate OK: {scenario} deterministic counters nonzero "
          f"and identical across {reference_path} and {names}{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
