#!/usr/bin/env python3
"""CI observability gate: a --trace file must be a well-formed Chrome
trace that Perfetto / chrome://tracing will load.

Usage: check_trace.py [--require NAME]... TRACE.json

Checks:
  - the file parses and holds a non-empty "traceEvents" array;
  - every event is a complete span: string "name", "ph" == "X",
    non-negative integer "ts"/"dur", integer "pid"/"tid";
  - events are globally sorted by start time (the writer emits them
    sorted with ties broken longest-duration-first so parents precede
    children — the order Perfetto's flame view expects);
  - per (pid, tid) lane, spans nest strictly: a span starting inside
    another on the same lane must also END inside it. Partial overlap
    means a broken recorder (clock going backwards, torn buffers);
  - each --require NAME (repeatable) appears at least once — the hook
    that asserts a sweep trace really contains sweep/row/node-range
    spans and a fleet trace contains fleet/shard-attempt spans.

Exits 0 when every check passes, 1 with a diagnosis otherwise.
"""
import json
import sys


def fail(message):
    print(f"check_trace: FAIL: {message}")
    sys.exit(1)


def validate_events(events):
    last_ts = -1
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where} lacks a non-empty string 'name'")
        if event.get("ph") != "X":
            fail(f"{where} ('{name}') has ph={event.get('ph')!r}, "
                 "expected complete event 'X'")
        for key in ("ts", "dur", "pid", "tid"):
            value = event.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                fail(f"{where} ('{name}') has non-integer {key}="
                     f"{value!r}")
        if event["ts"] < 0 or event["dur"] < 0:
            fail(f"{where} ('{name}') has negative ts/dur")
        if event["ts"] < last_ts:
            fail(f"{where} ('{name}') starts at {event['ts']} before the "
                 f"previous event's {last_ts} — the file is not sorted")
        last_ts = event["ts"]


def check_nesting(events):
    """Spans on one lane must nest like a call stack."""
    lanes = {}
    for event in events:
        lanes.setdefault((event["pid"], event["tid"]), []).append(event)
    for lane, lane_events in lanes.items():
        # Same start: the longer span is the parent and must come first.
        lane_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for event in lane_events:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                fail(f"lane pid={lane[0]} tid={lane[1]}: span "
                     f"'{event['name']}' [{start}, {end}) partially "
                     f"overlaps enclosing '{stack[-1][0]}' ending at "
                     f"{stack[-1][1]} — spans must nest")
            stack.append((event["name"], end))


def main(argv):
    required = []
    paths = []
    i = 1
    while i < len(argv):
        if argv[i] == "--require":
            i += 1
            if i >= len(argv):
                fail("--require needs a span name")
            required.append(argv[i])
        else:
            paths.append(argv[i])
        i += 1
    if len(paths) != 1:
        print(__doc__)
        sys.exit(2)

    try:
        with open(paths[0]) as handle:
            root = json.load(handle)
    except (OSError, json.JSONDecodeError) as ex:
        fail(f"{paths[0]}: {ex}")
    events = root.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{paths[0]} has no non-empty traceEvents array")

    validate_events(events)
    check_nesting(events)

    names = {event["name"] for event in events}
    for name in required:
        if name not in names:
            fail(f"required span '{name}' is absent (present: "
                 f"{', '.join(sorted(names))})")

    print(f"check_trace: OK: {paths[0]} ({len(events)} spans, "
          f"{len(names)} distinct names)")
    sys.exit(0)


if __name__ == "__main__":
    main(sys.argv)
