// E6 + E7 — error boosting by combining hard instances (Claim 3 and
// Theorem 1's glue).
//
// Setup mirrors the proof: C = zero-round uniform 3-coloring (t = 0),
// L = 1-resilient proper 3-coloring, D = the Corollary-1 decider (t' = 1,
// p in (2^{-1/1}, 2^{-1/2})). beta is measured on a single hard ring.
//
// E6 (Claim 3): on the DISJOINT UNION of nu hard instances,
//   Pr[D accepts C(G)] <= (1 - beta*p)^nu  — geometric decay in nu.
// E7 (Theorem 1): on the CONNECTED glue the decay persists, and the glue
//   preserves the promise: connected, max degree <= 3, biconnected.
// Both tables also print Eq. (3)'s nu / the nu' formula: how many
// instances suffice to push acceptance below any target r.
#include "bench_common.h"

#include "core/boost_params.h"
#include "core/glue.h"
#include "core/hard_instances.h"
#include "decide/evaluate.h"
#include "decide/experiment_plans.h"
#include "decide/resilient_decider.h"
#include "graph/metrics.h"
#include "graph/planarity.h"
#include "scenario/registry.h"
#include "stats/threadpool.h"

namespace {

using namespace lnc;

/// All components resolved once from the registry.
struct Setup {
  std::unique_ptr<lang::Language> base =
      scenario::make_language("coloring", {{"colors", 3}});
  std::unique_ptr<lang::Language> relaxed = scenario::make_language(
      "resilient-coloring", {{"colors", 3}, {"faults", 1}});
  std::unique_ptr<scenario::Construction> construction =
      scenario::make_construction("rand-coloring", {{"colors", 3}});
  const local::RandomizedBallAlgorithm& coloring =
      *construction->ball_algorithm();
  std::unique_ptr<decide::RandomizedDecider> decider =
      scenario::make_decider("resilient", base.get(), {{"faults", 1}});
  stats::ThreadPool pool;
  local::BatchRunner runner{&pool};
};

stats::Estimate acceptance(Setup& setup, const local::Instance& inst,
                           std::uint64_t tag) {
  return setup.runner.run(decide::construct_then_decide_plan(
      "glue-acceptance", inst, setup.coloring, *setup.decider, 1500, tag));
}

void print_tables() {
  bench::print_header(
      "E6/E7: boosting C's failure by combining hard instances",
      "Claim 3 and Theorem 1",
      "Acceptance of D on C(combined instance) decays geometrically with\n"
      "the number of combined hard instances, in the disjoint union AND in\n"
      "the connected Theorem-1 glue; the glue preserves the F_k promise.");

  Setup setup;
  const double p = decide::ResilientDecider::default_p(1);

  // Paper-faithful parameters: diameter floor D = 2*mu*(t+t'), t=0, t'=1.
  core::BoostParameters params;
  params.p = p;
  params.t = 0;
  params.t_prime = 1;
  params.r = 0.05;  // example target success probability for C

  // For the DECAY TABLE we use the smallest legal hard rings (n = 6):
  // larger rings make the per-part acceptance so small that every row
  // reads 0.0000; E8 uses the full Claim-4 diameter D. beta is measured
  // on the table's part size (Claim 2 only promises a positive floor).
  const std::uint64_t min_diameter = 2;
  const auto single = core::claim2_sequence(1, min_diameter);
  const stats::Estimate beta_est = core::estimate_beta(
      single[0], setup.coloring, *setup.relaxed, 3000, 7, &setup.pool);
  params.beta = beta_est.p_hat;

  std::cout << "decider p = " << util::format_double(p, 4)
            << ", mu = " << params.mu()
            << ", paper diameter floor D = 2*mu*(t+t') = "
            << params.min_diameter()
            << "; decay-table part size n = 6, measured beta = "
            << util::format_double(params.beta, 4) << " ["
            << util::format_double(beta_est.ci.lo, 4) << ", "
            << util::format_double(beta_est.ci.hi, 4) << "]\n"
            << "Eq. (3) nu for r = 0.05: " << params.nu()
            << "; nu' (glued) = " << params.nu_prime() << "\n\n";

  util::Table table({"nu", "accept (disjoint)", "(1-beta*p)^nu bound",
                     "accept (glued)", "glued bound", "glue degree<=3",
                     "glue biconnected", "glue planar"});
  for (std::size_t nu : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const auto parts = core::claim2_sequence(nu, min_diameter);
    const core::GluedInstance uni = core::disjoint_union_instances(parts);
    const stats::Estimate disjoint_acc =
        acceptance(setup, uni.instance, 100 + nu);

    std::string glued_acc = "-";
    std::string degree_ok = "-";
    std::string biconn = "-";
    std::string planar = "-";
    std::string glued_bound = "-";
    if (nu >= 2) {
      std::vector<graph::NodeId> anchors(parts.size(), 0);
      const core::GluedInstance glued = core::theorem1_glue(parts, anchors);
      const stats::Estimate acc = acceptance(setup, glued.instance, 200 + nu);
      glued_acc = util::format_double(acc.p_hat, 4);
      degree_ok = glued.instance.g.max_degree() <= 3 ? "yes" : "NO";
      biconn = graph::is_biconnected(glued.instance.g) ? "yes" : "NO";
      planar = graph::is_planar(glued.instance.g) ? "yes" : "NO";
      glued_bound = util::format_double(params.glued_acceptance_bound(nu), 4);
    }
    table.new_row()
        .add_cell(std::uint64_t{nu})
        .add_cell(disjoint_acc.p_hat, 4)
        .add_cell(params.disjoint_acceptance_bound(nu), 4)
        .add_cell(glued_acc)
        .add_cell(glued_bound)
        .add_cell(degree_ok)
        .add_cell(biconn)
        .add_cell(planar);
  }
  bench::print_table(table);
}

void BM_GlueConstruction(benchmark::State& state) {
  const auto nu = static_cast<std::size_t>(state.range(0));
  const auto parts = core::claim2_sequence(nu, 6);
  const std::vector<graph::NodeId> anchors(nu, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::theorem1_glue(parts, anchors));
  }
}
BENCHMARK(BM_GlueConstruction)->Arg(2)->Arg(8)->Arg(32);

void BM_BoostedTrial(benchmark::State& state) {
  Setup setup;
  const auto parts = core::claim2_sequence(4, 6);
  const std::vector<graph::NodeId> anchors(4, 0);
  const core::GluedInstance glued = core::theorem1_glue(parts, anchors);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins c_coins(++seed, rand::Stream::kConstruction);
    const rand::PhiloxCoins d_coins(seed, rand::Stream::kDecision);
    const local::Labeling y = local::run_ball_algorithm(
        glued.instance, setup.coloring, c_coins);
    benchmark::DoNotOptimize(
        decide::evaluate(glued.instance, y, *setup.decider, d_coins)
            .accepted);
  }
}
BENCHMARK(BM_BoostedTrial);

}  // namespace

LNC_BENCH_MAIN(print_tables)
