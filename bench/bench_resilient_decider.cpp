// E4 — the f-resilient randomized decider (Corollary 1's proof).
//
// Reproduces, for f = 1..8 with p in (2^{-1/f}, 2^{-1/(f+1)}):
//   Pr[all accept | exactly f bad balls]   ~ p^f     > 1/2
//   Pr[some reject | exactly f+1 bad balls] ~ 1-p^{f+1} > 1/2
// — which is precisely the membership L_f in BPLD that Theorem 1 needs.
//
// Instances: consecutive rings with exactly k bad balls planted as k
// isolated palette-overflow nodes (an out-of-range color makes the node's
// own ball bad without touching its neighbors' balls). The ring is
// interned and shared across samples; only the planted outputs vary.
#include "bench_common.h"

#include <cmath>

#include "decide/guarantee.h"
#include "decide/resilient_decider.h"
#include "scenario/registry.h"
#include "stats/threadpool.h"

namespace {

using namespace lnc;

/// A ring configuration with exactly `bad` bad balls: start from a proper
/// 3-coloring and overwrite `bad` well-separated nodes with color 7.
decide::SampledConfiguration planted_configuration(graph::NodeId n,
                                                   std::size_t bad,
                                                   std::uint64_t seed) {
  decide::SampledConfiguration sample;
  sample.shared_instance = scenario::interned_instance("hard-ring", n);
  sample.output.assign(n, 0);
  for (graph::NodeId v = 0; v < n; ++v) sample.output[v] = v % 2;
  if (n % 2 == 1) sample.output[n - 1] = 2;
  const graph::NodeId stride =
      std::max<graph::NodeId>(2, n / std::max<std::size_t>(1, bad));
  const auto offset = static_cast<graph::NodeId>(seed % 2);
  for (std::size_t i = 0; i < bad; ++i) {
    sample.output[(offset + static_cast<graph::NodeId>(i) * stride) % n] = 7;
  }
  return sample;
}

void print_tables() {
  bench::print_header(
      "E4: f-resilient decider guarantee", "Corollary 1 proof",
      "For each f: p in (2^{-1/f}, 2^{-1/(f+1)}); accept-on-yes ~ p^f and\n"
      "reject-on-no ~ 1 - p^{f+1}, both > 1/2 — so L_f is in BPLD.");

  const auto language = scenario::make_language("coloring", {{"colors", 3}});
  const lang::LclLanguage& base = *scenario::lcl_core(*language);
  const graph::NodeId n = 64;
  const stats::ThreadPool pool;

  util::Table table({"f", "p", "acc|yes meas", "p^f theory",
                     "rej|no meas", "1-p^(f+1) theory", "both > 1/2?"});
  for (std::size_t f : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const auto decider = scenario::make_decider(
        "resilient", language.get(), {{"faults", static_cast<double>(f)}});
    decide::GuaranteeOptions options;
    options.trials = 6000;
    options.base_seed = 1000 + f;
    options.pool = &pool;
    const auto yes = [&, f](std::uint64_t seed) {
      return planted_configuration(n, f, seed);
    };
    const auto no = [&, f](std::uint64_t seed) {
      return planted_configuration(n, f + 1, seed);
    };
    const decide::GuaranteeReport report =
        decide::measure_guarantee(*decider, yes, no, options);
    const double p = decide::ResilientDecider::default_p(f);
    table.new_row()
        .add_cell(std::uint64_t{f})
        .add_cell(p, 4)
        .add_cell(report.accept_on_yes.p_hat, 4)
        .add_cell(std::pow(p, static_cast<double>(f)), 4)
        .add_cell(report.reject_on_no.p_hat, 4)
        .add_cell(1.0 - std::pow(p, static_cast<double>(f + 1)), 4)
        .add_cell(report.meets_bpld_bar() ? "yes" : "NO");
  }
  bench::print_table(table);

  // Verification that planted counts are exact (the experiment's premise).
  util::Table plant({"planted", "measured bad balls"});
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    const auto sample = planted_configuration(n, k, 0);
    plant.new_row().add_cell(std::uint64_t{k}).add_cell(
        std::uint64_t{base.count_bad_balls(sample.inst(), sample.output)});
  }
  bench::print_table(plant);
}

void BM_ResilientDecide(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto language = scenario::make_language("coloring", {{"colors", 3}});
  const auto decider =
      scenario::make_decider("resilient", language.get(), {{"faults", 2}});
  const auto sample = planted_configuration(n, 2, 0);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins coins(++seed, rand::Stream::kDecision);
    benchmark::DoNotOptimize(
        decide::evaluate(sample.inst(), sample.output, *decider, coins)
            .accepted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ResilientDecide)->Arg(64)->Arg(512);

}  // namespace

LNC_BENCH_MAIN(print_tables)
