// E10 — the non-constant-time contrast class (paper, section 1.3): MIS
// and maximal matching need round counts that GROW with n; measured here
// for Luby's algorithm (O(log n) expected), randomized matching, and the
// greedy baseline (Theta(n) on consecutive rings). All components resolve
// through the scenario registry; the Construction interface reports the
// executed round count per trial.
#include "bench_common.h"

#include <cmath>

#include "algo/luby_mis.h"
#include "algo/rand_matching.h"
#include "local/batch_runner.h"
#include "scenario/registry.h"
#include "stats/threadpool.h"

namespace {

using namespace lnc;

void print_tables() {
  bench::print_header(
      "E10: rounds for MIS and maximal matching", "paper section 1.3",
      "Luby and randomized matching rounds grow ~ log2(n); greedy grows\n"
      "~ n. None is constant — the regime where the paper's question\n"
      "(does randomization buy constant-time?) is answered negatively by\n"
      "Theorem 1 for BPLD-decidable relaxations.");

  util::Table table({"n", "log2(n)", "Luby rounds (mean)",
                     "matching rounds (mean)", "greedy rounds",
                     "Luby valid", "matching valid"});
  const auto mis = scenario::make_language("mis");
  const auto matching = scenario::make_language("matching");
  const auto luby = scenario::make_construction("luby-mis");
  const auto rand_matching = scenario::make_construction("rand-matching");
  const auto greedy = scenario::make_construction("greedy-mis");
  local::BatchRunner runner;
  for (graph::NodeId n : {64u, 256u, 1024u, 4096u}) {
    const local::Instance inst =
        scenario::build_instance("ring", n, {{"random-ids", 1}}, n);
    const std::uint64_t trials = 8;
    // Counter slots: [luby rounds, luby valid, matching rounds, matching
    // valid] — one engine-backed trial runs both algorithms on shared
    // construction coins and a shared per-worker engine scratch.
    enum { kLubyRounds, kLubyValid, kMatchRounds, kMatchValid, kSlots };
    const auto counts = runner.run_counts(local::custom_count_plan(
        "mis-matching-rounds", trials, n, kSlots,
        [&](const local::TrialEnv& env, std::span<std::uint64_t> slots) {
          local::Labeling& output = env.arena->labeling();
          const auto luby_run = luby->run(inst, env, output);
          slots[kLubyRounds] += static_cast<std::uint64_t>(luby_run.rounds);
          slots[kLubyValid] += mis->contains(inst, output) ? 1 : 0;
          const auto match_run = rand_matching->run(inst, env, output);
          slots[kMatchRounds] += static_cast<std::uint64_t>(match_run.rounds);
          slots[kMatchValid] += matching->contains(inst, output) ? 1 : 0;
        }));
    const double luby_sum = static_cast<double>(counts[kLubyRounds]);
    const double match_sum = static_cast<double>(counts[kMatchRounds]);
    const bool luby_ok = counts[kLubyValid] == trials;
    const bool match_ok = counts[kMatchValid] == trials;
    std::string greedy_rounds = "-";
    if (n <= 256) {
      const local::Instance consecutive =
          scenario::build_instance("hard-ring", n);
      local::WorkerArena arena;
      local::TrialEnv env;
      env.arena = &arena;
      local::Labeling output;
      greedy_rounds =
          std::to_string(greedy->run(consecutive, env, output).rounds);
    }
    table.new_row()
        .add_cell(std::uint64_t{n})
        .add_cell(std::log2(static_cast<double>(n)), 1)
        .add_cell(luby_sum / trials, 1)
        .add_cell(match_sum / trials, 1)
        .add_cell(greedy_rounds)
        .add_cell(luby_ok ? "yes" : "NO")
        .add_cell(match_ok ? "yes" : "NO");
  }
  bench::print_table(table);
}

void BM_LubyMis(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst =
      scenario::build_instance("ring", n, {{"random-ids", 1}}, 3);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins coins(++seed, rand::Stream::kConstruction);
    benchmark::DoNotOptimize(algo::run_luby_mis(inst, coins));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LubyMis)->Arg(256)->Arg(2048);

void BM_RandMatching(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst =
      scenario::build_instance("ring", n, {{"random-ids", 1}}, 4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins coins(++seed, rand::Stream::kConstruction);
    benchmark::DoNotOptimize(algo::run_rand_matching(inst, coins));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandMatching)->Arg(256)->Arg(2048);

}  // namespace

LNC_BENCH_MAIN(print_tables)
