// E10 — the non-constant-time contrast class (paper, section 1.3): MIS
// and maximal matching need round counts that GROW with n; measured here
// for Luby's algorithm (O(log n) expected), randomized matching, and the
// greedy baseline (Theta(n) on consecutive rings).
#include "bench_common.h"

#include <cmath>

#include "algo/greedy_by_id.h"
#include "algo/luby_mis.h"
#include "algo/rand_matching.h"
#include "core/hard_instances.h"
#include "graph/generators.h"
#include "lang/matching.h"
#include "lang/mis.h"
#include "stats/montecarlo.h"
#include "stats/threadpool.h"

namespace {

using namespace lnc;

void print_tables() {
  bench::print_header(
      "E10: rounds for MIS and maximal matching", "paper section 1.3",
      "Luby and randomized matching rounds grow ~ log2(n); greedy grows\n"
      "~ n. None is constant — the regime where the paper's question\n"
      "(does randomization buy constant-time?) is answered negatively by\n"
      "Theorem 1 for BPLD-decidable relaxations.");

  util::Table table({"n", "log2(n)", "Luby rounds (mean)",
                     "matching rounds (mean)", "greedy rounds",
                     "Luby valid", "matching valid"});
  const lang::MaximalIndependentSet mis;
  const lang::MaximalMatching matching;
  for (graph::NodeId n : {64u, 256u, 1024u, 4096u}) {
    const local::Instance inst = local::make_instance(
        graph::cycle(n), ident::random_permutation(n, n));
    double luby_sum = 0;
    double match_sum = 0;
    bool luby_ok = true;
    bool match_ok = true;
    const int trials = 8;
    for (int trial = 0; trial < trials; ++trial) {
      const rand::PhiloxCoins coins(
          static_cast<std::uint64_t>(trial) * 7919 + n,
          rand::Stream::kConstruction);
      const local::EngineResult luby = algo::run_luby_mis(inst, coins);
      luby_sum += luby.rounds;
      luby_ok = luby_ok && mis.contains(inst, luby.output);
      const local::EngineResult match = algo::run_rand_matching(inst, coins);
      match_sum += match.rounds;
      match_ok = match_ok && matching.contains(inst, match.output);
    }
    std::string greedy_rounds = "-";
    if (n <= 256) {
      const local::Instance consecutive = core::consecutive_ring(n);
      greedy_rounds = std::to_string(
          run_engine(consecutive, algo::GreedyMisFactory{}).rounds);
    }
    table.new_row()
        .add_cell(std::uint64_t{n})
        .add_cell(std::log2(static_cast<double>(n)), 1)
        .add_cell(luby_sum / trials, 1)
        .add_cell(match_sum / trials, 1)
        .add_cell(greedy_rounds)
        .add_cell(luby_ok ? "yes" : "NO")
        .add_cell(match_ok ? "yes" : "NO");
  }
  bench::print_table(table);
}

void BM_LubyMis(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = local::make_instance(
      graph::cycle(n), ident::random_permutation(n, 3));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins coins(++seed, rand::Stream::kConstruction);
    benchmark::DoNotOptimize(algo::run_luby_mis(inst, coins));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LubyMis)->Arg(256)->Arg(2048);

void BM_RandMatching(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = local::make_instance(
      graph::cycle(n), ident::random_permutation(n, 4));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins coins(++seed, rand::Stream::kConstruction);
    benchmark::DoNotOptimize(algo::run_rand_matching(inst, coins));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandMatching)->Arg(256)->Arg(2048);

}  // namespace

LNC_BENCH_MAIN(print_tables)
