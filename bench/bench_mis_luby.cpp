// E10 — the non-constant-time contrast class (paper, section 1.3): MIS
// and maximal matching need round counts that GROW with n; measured here
// for Luby's algorithm (O(log n) expected), randomized matching, and the
// greedy baseline (Theta(n) on consecutive rings). The round-count table
// is now a declarative VALUE sweep: the round statistics compile through
// the scenario registry (workload = value, statistic = rounds) and run on
// the exact-sum mean path, so this TABLE_*.json trajectory measures the
// same plans `lnc_sweep --workload value` shards across machines.
#include "bench_common.h"

#include <cmath>

#include "algo/luby_mis.h"
#include "algo/rand_matching.h"
#include "local/batch_runner.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "stats/threadpool.h"

namespace {

using namespace lnc;

constexpr std::uint64_t kTrials = 8;

/// One declarative E10 sweep: rounds-of-construction as a value workload,
/// or the validity check as a success workload, on random-identity rings.
scenario::SweepResult run_e10_sweep(const std::string& name,
                                    const char* language,
                                    const char* construction,
                                    local::WorkloadKind workload) {
  scenario::ScenarioSpec spec;
  spec.name = name;
  spec.topology = "ring";
  spec.language = language;
  spec.construction = construction;
  spec.workload = workload;
  if (workload == local::WorkloadKind::kValue) spec.statistic = "rounds";
  spec.params = {{"random-ids", 1}};
  spec.n_grid = {64, 256, 1024, 4096};
  spec.trials = kTrials;
  spec.base_seed = 0x10B;
  return scenario::run_sweep(scenario::compile(spec));
}

void print_tables() {
  bench::print_header(
      "E10: rounds for MIS and maximal matching", "paper section 1.3",
      "Luby and randomized matching rounds grow ~ log2(n); greedy grows\n"
      "~ n. None is constant — the regime where the paper's question\n"
      "(does randomization buy constant-time?) is answered negatively by\n"
      "Theorem 1 for BPLD-decidable relaxations. Round counts flow through\n"
      "the scenario stack's value plans (exact-sum mean/stddev).");

  util::Table table({"n", "log2(n)", "Luby rounds (mean)", "Luby stddev",
                     "matching rounds (mean)", "greedy rounds",
                     "Luby valid", "matching valid"});
  const scenario::SweepResult luby_rounds = run_e10_sweep(
      "luby-rounds", "mis", "luby-mis", local::WorkloadKind::kValue);
  const scenario::SweepResult match_rounds =
      run_e10_sweep("matching-rounds", "matching", "rand-matching",
                    local::WorkloadKind::kValue);
  const scenario::SweepResult luby_valid = run_e10_sweep(
      "luby-valid", "mis", "luby-mis", local::WorkloadKind::kSuccess);
  const scenario::SweepResult match_valid =
      run_e10_sweep("matching-valid", "matching", "rand-matching",
                    local::WorkloadKind::kSuccess);
  const auto greedy = scenario::make_construction("greedy-mis");
  for (std::size_t i = 0; i < luby_rounds.rows.size(); ++i) {
    const std::uint64_t n = luby_rounds.rows[i].requested_n;
    const stats::MeanEstimate luby_mean =
        scenario::row_mean(luby_rounds.rows[i]);
    const stats::MeanEstimate match_mean =
        scenario::row_mean(match_rounds.rows[i]);
    std::string greedy_rounds = "-";
    if (n <= 256) {
      const local::Instance consecutive =
          scenario::build_instance("hard-ring", n);
      local::WorkerArena arena;
      local::TrialEnv env;
      env.arena = &arena;
      local::Labeling output;
      greedy_rounds =
          std::to_string(greedy->run(consecutive, env, output).rounds);
    }
    table.new_row()
        .add_cell(n)
        .add_cell(std::log2(static_cast<double>(n)), 1)
        .add_cell(luby_mean.mean, 1)
        .add_cell(luby_mean.stddev, 2)
        .add_cell(match_mean.mean, 1)
        .add_cell(greedy_rounds)
        .add_cell(luby_valid.rows[i].tally.successes == kTrials ? "yes"
                                                                : "NO")
        .add_cell(match_valid.rows[i].tally.successes == kTrials ? "yes"
                                                                 : "NO");
  }
  bench::print_table(table);
}

void BM_LubyMis(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst =
      scenario::build_instance("ring", n, {{"random-ids", 1}}, 3);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins coins(++seed, rand::Stream::kConstruction);
    benchmark::DoNotOptimize(algo::run_luby_mis(inst, coins));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LubyMis)->Arg(256)->Arg(2048);

void BM_RandMatching(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst =
      scenario::build_instance("ring", n, {{"random-ids", 1}}, 4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins coins(++seed, rand::Stream::kConstruction);
    benchmark::DoNotOptimize(algo::run_rand_matching(inst, coins));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandMatching)->Arg(256)->Arg(2048);

}  // namespace

LNC_BENCH_MAIN(print_tables)
