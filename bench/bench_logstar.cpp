// E3 — the Omega(log* n) / O(log* n) ring-coloring frontier (paper,
// sections 1.1 and 4; Linial's lower bound, Cole-Vishkin's upper bound).
//
// Reproduces the three-regime picture the paper's argument rests on:
//   * deterministic exact 3-coloring: rounds grow with log*(n)
//     (Cole-Vishkin measured against log* n);
//   * greedy-by-identity baseline: Theta(n) rounds on consecutive rings;
//   * randomized zero-round coloring: 0 rounds but only slack-correct.
// Constructions and the verifying language resolve from the registry.
#include "bench_common.h"

#include "algo/cole_vishkin.h"
#include "scenario/registry.h"
#include "util/logstar.h"

namespace {

using namespace lnc;

void print_tables() {
  bench::print_header(
      "E3: rounds to 3-color the ring", "paper sections 1.1 and 4",
      "Cole-Vishkin round counts track log*(n) while greedy tracks n; the\n"
      "zero-round randomized algorithm is flat but only eps-slack-correct\n"
      "(E2). This is the separation Corollary 1 turns into an f-resilient\n"
      "impossibility.");

  util::Table table({"n", "log*(n)", "CV rounds", "CV proper?",
                     "greedy rounds", "random rounds"});
  const auto lang3 = scenario::make_language("coloring", {{"colors", 3}});
  const auto cole_vishkin = scenario::make_construction("cole-vishkin");
  const auto greedy = scenario::make_construction("greedy-coloring");
  local::WorkerArena arena;
  local::TrialEnv env;
  env.arena = &arena;
  for (graph::NodeId n : {8u, 64u, 512u, 4096u, 32768u}) {
    const local::Instance inst = scenario::build_instance("hard-ring", n);
    local::Labeling colors;
    const auto cv = cole_vishkin->run(inst, env, colors);
    std::string greedy_rounds = "-";
    if (n <= 512) {  // greedy is Theta(n) rounds; cap the quadratic work
      local::Labeling greedy_colors;
      greedy_rounds =
          std::to_string(greedy->run(inst, env, greedy_colors).rounds);
    }
    table.new_row()
        .add_cell(std::uint64_t{n})
        .add_cell(util::log_star(n))
        .add_cell(cv.rounds)
        .add_cell(lang3->contains(inst, colors) ? "yes" : "NO")
        .add_cell(greedy_rounds)
        .add_cell(0);
  }
  bench::print_table(table);

  // The schedule formula itself, over identity bit-lengths: the log*-like
  // saturation at ~4 iterations for any practical universe.
  util::Table sched({"id bits", "CV reduction iterations"});
  for (int bits : {3, 8, 16, 32, 64}) {
    sched.new_row().add_cell(bits).add_cell(
        algo::ColeVishkinFactory::reduction_iterations(bits));
  }
  bench::print_table(sched);
}

void BM_ColeVishkin(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = scenario::build_instance("hard-ring", n);
  const auto cole_vishkin = scenario::make_construction("cole-vishkin");
  local::WorkerArena arena;
  local::TrialEnv env;
  env.arena = &arena;
  local::Labeling colors;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cole_vishkin->run(inst, env, colors).rounds);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColeVishkin)->Arg(64)->Arg(1024)->Arg(16384);

void BM_GreedyColoring(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = scenario::build_instance("hard-ring", n);
  const auto greedy = scenario::make_construction("greedy-coloring");
  local::WorkerArena arena;
  local::TrialEnv env;
  env.arena = &arena;
  local::Labeling colors;
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy->run(inst, env, colors).rounds);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GreedyColoring)->Arg(64)->Arg(256);

}  // namespace

LNC_BENCH_MAIN(print_tables)
