// E8 — Claims 4 and 5: the "far from u" machinery that makes the glue
// work for BPLD languages.
//
// On one hard instance H with the paper's diameter floor D = 2*mu*(t+t'):
//   * a scattered set S of mu nodes pairwise at distance > 2(t+t');
//   * for fixed failing sigma: some u in S has
//       Pr[D accepts C_sigma(H) far from u] < p            (Claim 4);
//   * critical strings are geometrically confined and pairwise disjoint
//     across S (the pigeonhole mu(2p-1) > 1);
//   * over both randomness sources, some u has
//       Pr[D rejects C(H) far from u] >= beta(1-p)/mu      (Claim 5).
#include "bench_common.h"

#include <algorithm>

#include "core/boost_params.h"
#include "core/critical_strings.h"
#include "core/hard_instances.h"
#include "decide/resilient_decider.h"
#include "graph/metrics.h"
#include "scenario/registry.h"
#include "stats/threadpool.h"

namespace {

using namespace lnc;

void print_tables() {
  bench::print_header(
      "E8: far-from-u acceptance, critical strings, Claim 5 anchors",
      "Theorem 1 proof, Claims 4 and 5",
      "Fix sigma in Rand(C) with C_sigma(H) not in L; then sample sigma'\n"
      "in Rand(D). Measured: far-acceptance per u in S, criticality\n"
      "counts with zero overlaps, and far-rejection vs beta(1-p)/mu.");

  const auto base = scenario::make_language("coloring", {{"colors", 3}});
  const auto relaxed_lang = scenario::make_language(
      "resilient-coloring", {{"colors", 3}, {"faults", 1}});
  const lang::Language& relaxed = *relaxed_lang;
  const auto construction =
      scenario::make_construction("rand-coloring", {{"colors", 3}});
  const local::RandomizedBallAlgorithm& coloring =
      *construction->ball_algorithm();
  const auto decider_ptr =
      scenario::make_decider("resilient", base.get(), {{"faults", 1}});
  const decide::RandomizedDecider& decider = *decider_ptr;
  const stats::ThreadPool pool;
  const double p = decide::ResilientDecider::default_p(1);

  core::BoostParameters params;
  params.p = p;
  params.t = 0;
  params.t_prime = 1;
  params.r = 0.05;
  const std::uint64_t mu = params.mu();
  const int exclusion = 1;  // t + t'

  // Hard ring with the paper's diameter: D = 2*mu*(t+t').
  const auto parts = core::claim2_sequence(1, params.min_diameter());
  const local::Instance& inst = parts[0];
  const stats::Estimate beta_est =
      core::estimate_beta(inst, coloring, relaxed, 2000, 3, &pool);
  params.beta = beta_est.p_hat;

  const auto scattered = graph::scattered_nodes(
      inst.g, 2 * exclusion, static_cast<std::size_t>(mu));

  std::cout << "p = " << util::format_double(p, 4) << ", mu = " << mu
            << ", mu*(2p-1) = "
            << util::format_double(static_cast<double>(mu) * (2 * p - 1), 4)
            << " (pigeonhole > 1: "
            << (core::mu_pigeonhole_holds(p) ? "yes" : "boundary") << ")\n"
            << "instance: ring n = " << inst.node_count()
            << ", |S| = " << scattered.size()
            << ", beta = " << util::format_double(params.beta, 4) << "\n\n";

  // Claim 4 for three fixed failing sigmas.
  util::Table claim4({"sigma", "min far-accept over S",
                      "max far-accept over S", "exists u with < p?"});
  int found = 0;
  for (std::uint64_t sigma = 1; sigma < 200 && found < 3; ++sigma) {
    const local::Labeling output =
        core::run_fixed_construction(inst, coloring, sigma);
    if (relaxed.contains(inst, output)) continue;  // need a failing sigma
    ++found;
    const core::Claim4Report report =
        core::verify_claim4(inst, output, decider, scattered, exclusion, p,
                            1200, sigma, &pool);
    double lo = 1.0;
    double hi = 0.0;
    for (const auto& est : report.far_accept) {
      lo = std::min(lo, est.p_hat);
      hi = std::max(hi, est.p_hat);
    }
    claim4.new_row()
        .add_cell(sigma)
        .add_cell(lo, 4)
        .add_cell(hi, 4)
        .add_cell(report.exists_below_p() ? "yes" : "NO");
  }
  bench::print_table(claim4);

  // Critical-string disjointness for the first failing sigma.
  for (std::uint64_t sigma = 1; sigma < 200; ++sigma) {
    const local::Labeling output =
        core::run_fixed_construction(inst, coloring, sigma);
    if (relaxed.contains(inst, output)) continue;
    const core::CriticalStringsReport report =
        core::verify_critical_strings(inst, output, decider, scattered,
                                      exclusion, 2000, 11);
    util::Table crit({"u (node)", "critical strings", "of trials"});
    for (std::size_t j = 0; j < scattered.size(); ++j) {
      crit.new_row()
          .add_cell(std::uint64_t{scattered[j]})
          .add_cell(report.critical_for[j])
          .add_cell(report.trials);
    }
    bench::print_table(crit);
    std::cout << "multi-critical strings (must be 0): "
              << report.multi_critical
              << "; escaped rejections (must be 0): "
              << report.escaped_reject << "\n\n";
    break;
  }

  // Claim 5: far-rejection per u against the beta(1-p)/mu floor.
  const core::Claim5Report claim5 =
      core::verify_claim5(inst, coloring, decider, scattered, exclusion,
                          params.beta, p, mu, 2500, 13, &pool);
  util::Table c5({"u (node)", "far-reject (meas)", "beta(1-p)/mu bound"});
  for (std::size_t j = 0; j < claim5.scattered.size(); ++j) {
    c5.new_row()
        .add_cell(std::uint64_t{claim5.scattered[j]})
        .add_cell(claim5.far_reject[j].p_hat, 4)
        .add_cell(claim5.bound, 4);
  }
  bench::print_table(c5);
  std::cout << "exists u above the bound: "
            << (claim5.exists_above_bound() ? "yes" : "NO")
            << "; best anchor: node " << claim5.best_anchor() << "\n\n";
}

void BM_FixedConstruction(benchmark::State& state) {
  const auto parts = core::claim2_sequence(1, 12);
  const auto construction =
      scenario::make_construction("rand-coloring", {{"colors", 3}});
  const local::RandomizedBallAlgorithm& coloring =
      *construction->ball_algorithm();
  std::uint64_t sigma = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_fixed_construction(parts[0], coloring, ++sigma));
  }
}
BENCHMARK(BM_FixedConstruction);

void BM_FarFromEvaluate(benchmark::State& state) {
  const auto parts = core::claim2_sequence(1, 12);
  const auto base = scenario::make_language("coloring", {{"colors", 3}});
  const auto decider_ptr =
      scenario::make_decider("resilient", base.get(), {{"faults", 1}});
  const decide::RandomizedDecider& decider = *decider_ptr;
  const auto construction =
      scenario::make_construction("rand-coloring", {{"colors", 3}});
  const local::Labeling y = core::run_fixed_construction(
      parts[0], *construction->ball_algorithm(), 1);
  decide::EvaluateOptions options;
  options.far_from = decide::FarFrom{0, 1};
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins coins(++seed, rand::Stream::kDecision);
    benchmark::DoNotOptimize(
        decide::evaluate(parts[0], y, decider, coins, options).accepted);
  }
}
BENCHMARK(BM_FarFromEvaluate);

}  // namespace

LNC_BENCH_MAIN(print_tables)
