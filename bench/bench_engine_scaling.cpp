// E12 — substrate validation: throughput of the synchronous engine, ball
// collection, and ball views at the scales the E-series experiments use,
// including the thread-pool ablation (parallel node stepping) and the
// batched-vs-naive trial execution comparison. Components resolve from the
// scenario registry; the Construction::RunOptions pool knob drives the
// parallel-stepping ablation.
#include "bench_common.h"

#include <initializer_list>
#include <utility>

#include "algo/weak_color_mc.h"
#include "graph/ball.h"
#include "local/ball_collector.h"
#include "local/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/presets.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "stats/threadpool.h"
#include "util/timer.h"

namespace {

using namespace lnc;

void print_tables() {
  bench::print_header(
      "E12: simulation substrate throughput", "engine ablation",
      "Node-rounds per second for the round engine (1 vs pool threads),\n"
      "plus ball-collection cost — the substrate budget behind E2-E8.");

  util::Table table({"n", "engine 1-thread Mnr/s", "engine pooled Mnr/s",
                     "collect_balls(r=2) ms"});
  const stats::ThreadPool pool;
  const auto cole_vishkin = scenario::make_construction("cole-vishkin");
  for (graph::NodeId n : {1024u, 8192u, 32768u}) {
    const local::Instance inst = scenario::build_instance("hard-ring", n);
    local::WorkerArena seq_arena;
    local::TrialEnv env;
    env.arena = &seq_arena;
    local::Labeling colors;

    util::Timer t1;
    const auto seq = cole_vishkin->run(inst, env, colors);
    const double seq_s = t1.elapsed_seconds();
    const double seq_nr =
        static_cast<double>(n) * seq.rounds / seq_s / 1e6;

    local::WorkerArena par_arena;
    env.arena = &par_arena;
    util::Timer t2;
    const auto par = cole_vishkin->run(inst, env, colors, {&pool});
    const double par_s = t2.elapsed_seconds();
    const double par_nr =
        static_cast<double>(n) * par.rounds / par_s / 1e6;

    util::Timer t3;
    const auto tables = local::collect_balls(inst, 2);
    const double collect_ms = t3.elapsed_millis();

    table.new_row()
        .add_cell(std::uint64_t{n})
        .add_cell(seq_nr, 2)
        .add_cell(par_nr, 2)
        .add_cell(collect_ms, 1);
    benchmark::DoNotOptimize(tables);
    benchmark::DoNotOptimize(colors);
  }
  bench::print_table(table);

  // Batched Monte-Carlo ablation: the SAME engine workload (weak-coloring
  // MC, 7 rounds) run as (a) a naive per-trial run_engine loop with fresh
  // allocations per trial, (b) BatchRunner with one warm arena at 1
  // thread (isolates the arena-reuse + program-recycling win), (c)
  // BatchRunner at trial granularity on 8 threads. Success tallies must
  // agree — the batched path is a pure execution change.
  std::cout << "Batched trial execution vs naive per-trial engine loop\n"
               "(weak-coloring MC, n = 512, 600 trials; host has "
            << std::thread::hardware_concurrency()
            << " hardware thread(s) — on a single-core host the 8-thread\n"
               "row collapses to the arena-reuse win alone):\n\n";
  // The telemetry columns are the engine's MEASURED communication volume
  // (local/telemetry.h): the batched rows must agree counter for counter
  // across thread counts — the CI telemetry gate's contract, visible here
  // in a bench table.
  util::Table batched({"path", "trials/s", "speedup", "successes", "msgs",
                       "words", "rounds"});
  {
    const graph::NodeId n = 512;
    const local::Instance inst = scenario::build_instance("hard-ring", n);
    const auto weak = scenario::make_language("weak-coloring", {{"colors", 2}});
    const auto mc =
        scenario::make_construction("weak-color-mc", {{"fixup-rounds", 6}});
    const std::uint64_t trials = 600;
    const std::uint64_t base_seed = 7;

    auto make_plan = [&]() {
      return local::custom_plan(
          "weak-color-batch", trials, base_seed,
          [&](const local::TrialEnv& env) {
            local::Labeling& output = env.arena->labeling();
            mc->run(inst, env, output);
            return weak->contains(inst, output);
          });
    };

    // (a) naive: same per-trial seeds, no scratch, no batching.
    util::Timer naive_timer;
    std::uint64_t naive_successes = 0;
    for (std::uint64_t i = 0; i < trials; ++i) {
      const rand::PhiloxCoins coins(
          rand::mix_keys(stats::trial_seed(base_seed, i),
                         local::kConstructionSeedTag),
          rand::Stream::kConstruction);
      const local::EngineResult result =
          algo::run_weak_color_mc(inst, coins, 6);
      if (weak->contains(inst, result.output)) ++naive_successes;
    }
    const double naive_s = naive_timer.elapsed_seconds();

    // (b) batched, 1 worker (arena reuse + program recycling only).
    local::BatchRunner sequential_runner;
    util::Timer seq_timer;
    const stats::Estimate seq_est = sequential_runner.run(make_plan());
    const double batched1_s = seq_timer.elapsed_seconds();

    // (c) batched, 8 workers (arena reuse + trial-granularity parallelism).
    const stats::ThreadPool pool8(8);
    local::BatchRunner parallel_runner(&pool8);
    parallel_runner.run(make_plan());  // warm the arenas
    util::Timer par_timer;
    const stats::Estimate par_est = parallel_runner.run(make_plan());
    const double batched8_s = par_timer.elapsed_seconds();

    const local::Telemetry seq_telemetry = sequential_runner.last_telemetry();
    const local::Telemetry par_telemetry = parallel_runner.last_telemetry();
    const double naive_rate = static_cast<double>(trials) / naive_s;
    batched.new_row()
        .add_cell("naive run_engine loop")
        .add_cell(naive_rate, 0)
        .add_cell(1.0, 2)
        .add_cell(naive_successes)
        .add_cell("-")
        .add_cell("-")
        .add_cell("-");
    batched.new_row()
        .add_cell("BatchRunner 1 thread")
        .add_cell(static_cast<double>(trials) / batched1_s, 0)
        .add_cell(naive_s / batched1_s, 2)
        .add_cell(seq_est.successes)
        .add_cell(seq_telemetry.messages_sent)
        .add_cell(seq_telemetry.words_sent)
        .add_cell(seq_telemetry.rounds_executed);
    batched.new_row()
        .add_cell("BatchRunner 8 threads")
        .add_cell(static_cast<double>(trials) / batched8_s, 0)
        .add_cell(naive_s / batched8_s, 2)
        .add_cell(par_est.successes)
        .add_cell(par_telemetry.messages_sent)
        .add_cell(par_telemetry.words_sent)
        .add_cell(par_telemetry.rounds_executed);
    bench::print_table(batched, &par_telemetry);
  }

  // Value-plan sharded identity: the SAME round-count workload (Luby MIS
  // rounds, the E10 statistic) executed (a) unsharded at 1 thread, (b)
  // unsharded at 8 threads, (c) as a 3-shard merge — the exact-sum
  // mean/stddev must agree BIT FOR BIT across all three (the value-sweep
  // counterpart of the telemetry gate, visible in a bench trajectory).
  std::cout << "Value-plan (mean rounds) thread/shard identity — Luby MIS\n"
               "on a 512-node random-identity ring, 60 trials:\n\n";
  util::Table value_identity(
      {"path", "mean rounds", "stddev", "bit-identical"});
  {
    scenario::ScenarioSpec spec;
    spec.name = "luby-rounds-identity";
    spec.topology = "ring";
    spec.language = "mis";
    spec.construction = "luby-mis";
    spec.workload = local::WorkloadKind::kValue;
    spec.statistic = "rounds";
    spec.params = {{"random-ids", 1}};
    spec.n_grid = {512};
    spec.trials = 60;
    spec.base_seed = 0xE12;
    const scenario::CompiledScenario compiled = scenario::compile(spec);

    const scenario::SweepResult reference = scenario::run_sweep(compiled);
    const stats::ThreadPool pool8(8);
    scenario::SweepOptions pooled;
    pooled.pool = &pool8;
    const scenario::SweepResult threaded =
        scenario::run_sweep(compiled, pooled);
    std::vector<scenario::SweepResult> shards;
    for (unsigned s = 0; s < 3; ++s) {
      scenario::SweepOptions options;
      options.shard = s;
      options.shard_count = 3;
      shards.push_back(scenario::run_sweep(compiled, options));
    }
    const scenario::SweepResult merged = scenario::merge_sweeps(shards);

    const stats::MeanEstimate want = scenario::row_mean(reference.rows[0]);
    auto add_row = [&](const char* path, const scenario::SweepResult& run) {
      const stats::MeanEstimate got = scenario::row_mean(run.rows[0]);
      value_identity.new_row()
          .add_cell(path)
          .add_cell(got.mean, 4)
          .add_cell(got.stddev, 4)
          .add_cell(got.mean == want.mean && got.stddev == want.stddev
                        ? "yes"
                        : "NO");
    };
    add_row("unsharded, 1 thread", reference);
    add_row("unsharded, 8 threads", threaded);
    add_row("3-shard merge", merged);
  }
  bench::print_table(value_identity);

  // BallView arena reuse: the direct ball runner's per-node collection
  // with a fresh BallView per node (the pre-arena behavior: five vectors
  // plus an O(n) visited map allocated and zeroed per node) vs one
  // BallWorkspace re-collected in place — what every worker now holds
  // across trials (ROADMAP "BallView arenas"). The collected structures
  // are bit-identical (tests/graph_test.cpp); only allocation differs.
  std::cout << "BallView arena reuse — per-node ball collection on a\n"
               "hard-ring instance, whole-graph sweeps:\n\n";
  util::Table arena_table(
      {"n", "radius", "fresh Mballs/s", "arena Mballs/s", "speedup"});
  for (const auto& [n, radius] :
       std::initializer_list<std::pair<graph::NodeId, int>>{
           {4096, 1}, {4096, 2}, {4096, 4}}) {
    const local::Instance inst = scenario::build_instance("hard-ring", n);
    const int passes = 4;
    std::uint64_t sink = 0;

    util::Timer fresh_timer;
    for (int pass = 0; pass < passes; ++pass) {
      for (graph::NodeId v = 0; v < n; ++v) {
        const graph::BallView ball(inst.g, v, radius);
        sink += ball.size();
      }
    }
    const double fresh_s = fresh_timer.elapsed_seconds();

    graph::BallView reused;
    graph::BallScratch scratch;
    util::Timer arena_timer;
    for (int pass = 0; pass < passes; ++pass) {
      for (graph::NodeId v = 0; v < n; ++v) {
        reused.collect(inst.g, v, radius, scratch);
        sink += reused.size();
      }
    }
    const double arena_s = arena_timer.elapsed_seconds();
    benchmark::DoNotOptimize(sink);

    const double total =
        static_cast<double>(passes) * static_cast<double>(n);
    arena_table.new_row()
        .add_cell(std::uint64_t{n})
        .add_cell(std::uint64_t(radius))
        .add_cell(total / fresh_s / 1e6, 2)
        .add_cell(total / arena_s / 1e6, 2)
        .add_cell(fresh_s / arena_s, 2);
  }
  bench::print_table(arena_table);

  // Backend ablation: the SAME vectorizable workloads forced through each
  // trial-execution backend (local/vector_engine.h). The tallies, exact
  // sums, and deterministic telemetry must be bit-identical on every row
  // — the speedup column is the only thing a backend may change. The CI
  // backend identity gate re-asserts the same contract from the CLI
  // (lnc_sweep --backend + tools/check_value_merge.py).
  std::cout << "Trial-execution backend ablation — naive per-trial arenas\n"
               "vs batched (warm scalar arenas) vs vectorized (SoA\n"
               "lockstep batches), 1 thread, preset-default n:\n\n";
  util::Table backend_table({"workload", "backend", "trials/s",
                             "speedup vs batched", "bit-identical"});
  local::OptimizationConfig vectorized_config;
  {
    using Backend = local::OptimizationConfig::Backend;
    std::vector<scenario::ScenarioSpec> cases;
    {
      // The vectorized backend's showcase: Luby on C_n keeps every halted
      // node paying scalar message costs for the whole O(log n) tail, all
      // of which the SoA skip masks elide (n = 1024 is the middle of the
      // preset's default grid).
      scenario::ScenarioSpec spec =
          *scenario::find_preset("ring-mis-luby-rounds");
      spec.n_grid = {1024};
      spec.trials = 2000;
      cases.push_back(std::move(spec));
    }
    for (const char* preset : {"luby-mis-rounds", "rand-matching-rounds"}) {
      scenario::ScenarioSpec spec = *scenario::find_preset(preset);
      spec.n_grid = {256};
      spec.trials = 400;
      cases.push_back(std::move(spec));
    }
    {
      scenario::ScenarioSpec spec;
      spec.name = "weak-color-mc";
      spec.topology = "hard-ring";
      spec.language = "weak-coloring";
      spec.construction = "weak-color-mc";
      spec.params = {{"colors", 2}, {"fixup-rounds", 6}};
      spec.n_grid = {512};
      spec.trials = 400;
      spec.base_seed = 0xE12;
      cases.push_back(std::move(spec));
    }
    for (scenario::ScenarioSpec& spec : cases) {
      struct Run {
        double seconds = 0;
        local::ShardTally tally;
      };
      auto run_backend = [&](Backend backend) {
        spec.backend = backend;
        const scenario::CompiledScenario compiled = scenario::compile(spec);
        Run run;
        util::Timer timer;
        const scenario::SweepResult result = scenario::run_sweep(compiled);
        run.seconds = timer.elapsed_seconds();
        run.tally = result.rows[0].tally;
        if (backend == Backend::kVectorized) {
          vectorized_config = compiled.points()[0].plan.optimization;
        }
        return run;
      };
      const Run naive = run_backend(Backend::kNaive);
      const Run batched = run_backend(Backend::kBatched);
      const Run vectorized = run_backend(Backend::kVectorized);
      auto add_row = [&](const char* backend, const Run& run) {
        const bool identical =
            run.tally.successes == naive.tally.successes &&
            run.tally.value_sum == naive.tally.value_sum &&
            run.tally.value_sum_sq == naive.tally.value_sum_sq &&
            run.tally.telemetry.deterministic_equal(naive.tally.telemetry);
        backend_table.new_row()
            .add_cell(spec.name)
            .add_cell(backend)
            .add_cell(static_cast<double>(spec.trials) / run.seconds, 0)
            .add_cell(batched.seconds / run.seconds, 2)
            .add_cell(identical ? "yes" : "NO");
      };
      add_row("naive", naive);
      add_row("batched", batched);
      add_row("vectorized", vectorized);
    }
  }
  bench::print_table(backend_table, nullptr, &vectorized_config);

  // Observability overhead: the obs layer (src/obs) promises near-zero
  // cost while disabled and a strictly timing-only effect when enabled.
  // The SAME workload runs with the trace recorder + metrics off, then
  // on (spans and latency histograms recorded, the trace then
  // discarded); the bit-identical column re-asserts the timing-only
  // contract from inside the bench harness, and the relative column is
  // the price of --trace.
  std::cout << "Observability overhead — trace recorder + metrics off vs\n"
               "on (Luby MIS rounds, n = 256, 400 trials, 1 thread):\n\n";
  util::Table obs_table(
      {"observability", "trials/s", "relative", "bit-identical"});
  {
    scenario::ScenarioSpec spec = *scenario::find_preset("luby-mis-rounds");
    spec.n_grid = {256};
    spec.trials = 400;
    const scenario::CompiledScenario compiled = scenario::compile(spec);
    scenario::run_sweep(compiled);  // warm-up: allocations out of the timing

    struct Run {
      double seconds = 0;
      local::ShardTally tally;
    };
    auto timed_run = [&](bool enabled) {
      obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
      if (enabled) {
        recorder.enable();
        obs::set_metrics_enabled(true);
      }
      Run run;
      util::Timer timer;
      const scenario::SweepResult result = scenario::run_sweep(compiled);
      run.seconds = timer.elapsed_seconds();
      run.tally = result.rows[0].tally;
      recorder.disable();
      obs::set_metrics_enabled(false);
      recorder.clear();
      return run;
    };
    const Run off = timed_run(false);
    const Run on = timed_run(true);
    auto add_row = [&](const char* label, const Run& run) {
      const bool identical =
          run.tally.successes == off.tally.successes &&
          run.tally.value_sum == off.tally.value_sum &&
          run.tally.value_sum_sq == off.tally.value_sum_sq &&
          run.tally.telemetry.deterministic_equal(off.tally.telemetry);
      obs_table.new_row()
          .add_cell(label)
          .add_cell(static_cast<double>(spec.trials) / run.seconds, 0)
          .add_cell(off.seconds / run.seconds, 2)
          .add_cell(identical ? "yes" : "NO");
    };
    add_row("off", off);
    add_row("trace + metrics on", on);
  }
  bench::print_table(obs_table);
}

void BM_BatchedTrials(benchmark::State& state) {
  // items/s == trials/s for the batched path at the given thread count.
  const auto threads = static_cast<unsigned>(state.range(0));
  const local::Instance inst = scenario::build_instance("hard-ring", 512);
  const auto weak = scenario::make_language("weak-coloring", {{"colors", 2}});
  const auto mc =
      scenario::make_construction("weak-color-mc", {{"fixup-rounds", 6}});
  const std::uint64_t trials = 200;
  const stats::ThreadPool pool(threads);
  local::BatchRunner runner(threads == 0 ? nullptr : &pool);
  const local::ExperimentPlan plan = local::custom_plan(
      "weak-color-bm", trials, 7, [&](const local::TrialEnv& env) {
        local::Labeling& output = env.arena->labeling();
        mc->run(inst, env, output);
        return weak->contains(inst, output);
      });
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(plan).successes);
  }
  state.SetItemsProcessed(state.iterations() * trials);
}
BENCHMARK(BM_BatchedTrials)->Arg(0)->Arg(1)->Arg(4)->Arg(8);

void BM_BallView(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto radius = static_cast<int>(state.range(1));
  const local::Instance inst = scenario::build_instance("ring", n);
  graph::NodeId v = 0;
  for (auto _ : state) {
    const graph::BallView ball(inst.g, v, radius);
    benchmark::DoNotOptimize(ball.size());
    v = (v + 1) % n;
  }
}
BENCHMARK(BM_BallView)->Args({1024, 1})->Args({1024, 4})->Args({16384, 4});

void BM_BallViewArena(benchmark::State& state) {
  // Same collections as BM_BallView through a reused workspace — the
  // steady state of the batched Monte-Carlo runners.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto radius = static_cast<int>(state.range(1));
  const local::Instance inst = scenario::build_instance("ring", n);
  graph::BallView ball;
  graph::BallScratch scratch;
  graph::NodeId v = 0;
  for (auto _ : state) {
    ball.collect(inst.g, v, radius, scratch);
    benchmark::DoNotOptimize(ball.size());
    v = (v + 1) % n;
  }
}
BENCHMARK(BM_BallViewArena)
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Args({16384, 4});

void BM_EngineRound(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = scenario::build_instance("hard-ring", n);
  const auto cole_vishkin = scenario::make_construction("cole-vishkin");
  local::WorkerArena arena;
  local::TrialEnv env;
  env.arena = &arena;
  local::Labeling colors;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cole_vishkin->run(inst, env, colors).rounds);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRound)->Arg(1024)->Arg(8192);

void BM_CollectBalls(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = scenario::build_instance("hard-ring", n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::collect_balls(inst, 2));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CollectBalls)->Arg(512)->Arg(4096);

void BM_RunBallAlgorithmParallel(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = scenario::build_instance("hard-ring", n);
  class Rank final : public local::BallAlgorithm {
   public:
    std::string name() const override { return "rank"; }
    int radius() const override { return 2; }
    local::Label compute(const local::View& view) const override {
      local::Label rank = 0;
      for (graph::NodeId i = 1; i < view.ball->size(); ++i) {
        if (view.identity(i) < view.center_identity()) ++rank;
      }
      return rank;
    }
  };
  const Rank algo;
  const stats::ThreadPool pool;
  local::RunOptions options;
  options.pool = state.range(1) != 0 ? &pool : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_ball_algorithm(inst, algo, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RunBallAlgorithmParallel)
    ->Args({8192, 0})
    ->Args({8192, 1})
    ->Args({65536, 0})
    ->Args({65536, 1});

}  // namespace

LNC_BENCH_MAIN(print_tables)
