// E12 — substrate validation: throughput of the synchronous engine, ball
// collection, and ball views at the scales the E-series experiments use,
// including the thread-pool ablation (parallel node stepping) and the
// ball-based vs message-passing execution cost comparison.
#include "bench_common.h"

#include "algo/cole_vishkin.h"
#include "graph/ball.h"
#include "graph/generators.h"
#include "local/ball_collector.h"
#include "local/engine.h"
#include "local/runner.h"
#include "stats/threadpool.h"
#include "util/logstar.h"
#include "util/timer.h"

namespace {

using namespace lnc;

local::Instance ring_instance(graph::NodeId n) {
  return local::make_instance(graph::cycle(n), ident::consecutive(n));
}

void print_tables() {
  bench::print_header(
      "E12: simulation substrate throughput", "engine ablation",
      "Node-rounds per second for the round engine (1 vs pool threads),\n"
      "plus ball-collection cost — the substrate budget behind E2-E8.");

  util::Table table({"n", "engine 1-thread Mnr/s", "engine pooled Mnr/s",
                     "collect_balls(r=2) ms"});
  const stats::ThreadPool pool;
  for (graph::NodeId n : {1024u, 8192u, 32768u}) {
    const local::Instance inst = ring_instance(n);
    const int bits = util::floor_log2(n) + 1;

    util::Timer t1;
    const local::EngineResult seq = algo::run_cole_vishkin(inst, bits);
    const double seq_s = t1.elapsed_seconds();
    const double seq_nr =
        static_cast<double>(n) * seq.rounds / seq_s / 1e6;

    local::EngineOptions options;
    options.grant_ring_orientation = true;
    options.pool = &pool;
    const algo::ColeVishkinFactory factory(bits);
    util::Timer t2;
    const local::EngineResult par = run_engine(inst, factory, options);
    const double par_s = t2.elapsed_seconds();
    const double par_nr =
        static_cast<double>(n) * par.rounds / par_s / 1e6;

    util::Timer t3;
    const auto tables = local::collect_balls(inst, 2);
    const double collect_ms = t3.elapsed_millis();

    table.new_row()
        .add_cell(std::uint64_t{n})
        .add_cell(seq_nr, 2)
        .add_cell(par_nr, 2)
        .add_cell(collect_ms, 1);
    benchmark::DoNotOptimize(tables);
    benchmark::DoNotOptimize(par.output);
  }
  bench::print_table(table);
}

void BM_BallView(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto radius = static_cast<int>(state.range(1));
  const graph::Graph g = graph::cycle(n);
  graph::NodeId v = 0;
  for (auto _ : state) {
    const graph::BallView ball(g, v, radius);
    benchmark::DoNotOptimize(ball.size());
    v = (v + 1) % n;
  }
}
BENCHMARK(BM_BallView)->Args({1024, 1})->Args({1024, 4})->Args({16384, 4});

void BM_EngineRound(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = ring_instance(n);
  const int bits = util::floor_log2(n) + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::run_cole_vishkin(inst, bits));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRound)->Arg(1024)->Arg(8192);

void BM_CollectBalls(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = ring_instance(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::collect_balls(inst, 2));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CollectBalls)->Arg(512)->Arg(4096);

void BM_RunBallAlgorithmParallel(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = ring_instance(n);
  class Rank final : public local::BallAlgorithm {
   public:
    std::string name() const override { return "rank"; }
    int radius() const override { return 2; }
    local::Label compute(const local::View& view) const override {
      local::Label rank = 0;
      for (graph::NodeId i = 1; i < view.ball->size(); ++i) {
        if (view.identity(i) < view.center_identity()) ++rank;
      }
      return rank;
    }
  };
  const Rank algo;
  const stats::ThreadPool pool;
  local::RunOptions options;
  options.pool = state.range(1) != 0 ? &pool : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_ball_algorithm(inst, algo, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RunBallAlgorithmParallel)
    ->Args({8192, 0})
    ->Args({8192, 1})
    ->Args({65536, 0})
    ->Args({65536, 1});

}  // namespace

LNC_BENCH_MAIN(print_tables)
