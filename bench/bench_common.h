// Shared helpers for the experiment binaries: a standard preamble/epilogue
// and the convention that each binary prints its reproduced tables first,
// then runs its google-benchmark microbenchmarks.
//
// Machine-readable output: when LNC_BENCH_JSON_DIR is set, every printed
// table is also written as JSON to <dir>/TABLE_<experiment>_<k>.json and
// the microbenchmarks are recorded to <dir>/BENCH_<binary>.json — the
// per-PR trajectory files CI archives.
#pragma once

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "local/telemetry.h"
#include "scenario/spec_json.h"
#include "util/table.h"

namespace lnc::bench {
namespace detail {

inline std::string& current_experiment() {
  static std::string name;
  return name;
}

/// Monotonic across the whole binary — NEVER reset per header. Two
/// experiments that slugify to the same name would otherwise restart the
/// numbering and overwrite each other's TABLE_*.json files.
inline int& table_index() {
  static int index = 0;
  return index;
}

inline std::string slugify(const std::string& text) {
  std::string slug;
  for (char ch : text) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      slug.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    } else if (!slug.empty() && slug.back() != '-') {
      slug.push_back('-');
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "experiment" : slug;
}

}  // namespace detail

inline void print_header(const std::string& experiment,
                         const std::string& paper_source,
                         const std::string& claim) {
  detail::current_experiment() = detail::slugify(experiment);
  std::cout << "\n=== " << experiment << " — " << paper_source << " ===\n"
            << claim << "\n\n";
}

/// Prints the table; when LNC_BENCH_JSON_DIR is set, the JSON file also
/// carries a `telemetry` object when one is supplied — the communication
/// volume behind the table's numbers (local/telemetry.h) — and an
/// `optimization` object naming the backend/tuning configuration the rows
/// ran under (local/vector_engine.h), so TABLE_*.json trajectories record
/// message/word volume and the producing backend next to the reproduced
/// values.
inline void print_table(const util::Table& table,
                        const local::Telemetry* telemetry = nullptr,
                        const local::OptimizationConfig* optimization =
                            nullptr) {
  table.print(std::cout);
  std::cout << '\n';
  if (const char* json_dir = std::getenv("LNC_BENCH_JSON_DIR")) {
    const std::string path = std::string(json_dir) + "/TABLE_" +
                             detail::current_experiment() + "_" +
                             std::to_string(detail::table_index()++) +
                             ".json";
    std::ofstream out(path);
    if (out) {
      std::string extra;
      if (telemetry != nullptr) {
        extra += "\"telemetry\": " + scenario::telemetry_to_json(*telemetry);
      }
      if (optimization != nullptr) {
        if (!extra.empty()) extra += ", ";
        extra += "\"optimization\": " +
                 scenario::optimization_to_json(*optimization);
      }
      table.print_json(out, extra);
    }
  }
}

/// Standard main body: tables first, then microbenchmarks (recorded as
/// JSON next to the tables when LNC_BENCH_JSON_DIR is set).
inline int run_bench_main(int argc, char** argv,
                          void (*print_tables_fn)()) {
  print_tables_fn();
  std::vector<std::string> args(argv, argv + argc);
  if (const char* json_dir = std::getenv("LNC_BENCH_JSON_DIR")) {
    std::string name = args.empty() ? std::string("bench") : args[0];
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    args.push_back("--benchmark_out_format=json");
    args.push_back(std::string("--benchmark_out=") + json_dir + "/BENCH_" +
                   name + ".json");
  }
  std::vector<char*> arg_ptrs;
  arg_ptrs.reserve(args.size());
  for (std::string& arg : args) arg_ptrs.push_back(arg.data());
  int adjusted_argc = static_cast<int>(arg_ptrs.size());
  ::benchmark::Initialize(&adjusted_argc, arg_ptrs.data());
  if (::benchmark::ReportUnrecognizedArguments(adjusted_argc,
                                               arg_ptrs.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

#define LNC_BENCH_MAIN(print_tables_fn)                           \
  int main(int argc, char** argv) {                               \
    return ::lnc::bench::run_bench_main(argc, argv, print_tables_fn); \
  }

}  // namespace lnc::bench
