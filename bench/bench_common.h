// Shared helpers for the experiment binaries: a standard preamble/epilogue
// and the convention that each binary prints its reproduced tables first,
// then runs its google-benchmark microbenchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "util/table.h"

namespace lnc::bench {

inline void print_header(const std::string& experiment,
                         const std::string& paper_source,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " — " << paper_source << " ===\n"
            << claim << "\n\n";
}

inline void print_table(const util::Table& table) {
  table.print(std::cout);
  std::cout << '\n';
}

/// Standard main body: tables first, then microbenchmarks.
#define LNC_BENCH_MAIN(print_tables_fn)                      \
  int main(int argc, char** argv) {                          \
    print_tables_fn();                                       \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

}  // namespace lnc::bench
