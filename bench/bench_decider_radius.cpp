// E9 — LD is a strict subset of BPLD, witnessed by amos (paper, section
// 2.3.1): "amos cannot be deterministically decided in D/2 - 1 rounds in
// graphs of diameter D (because no nodes can decide whether or not two
// nodes at distance D are selected)". The zero-round randomized decider
// achieves guarantee ~0.618 on EVERY diameter.
//
// Two measurements:
//  1. Exhaustive sweep of all zero-round deterministic deciders (verdict =
//     function of (selected?, has-no-neighbors?)): each one errs on a yes
//     or a no instance.
//  2. The natural radius-t LD attempt (the registered "local-count"
//     decider: reject iff >= 2 selected in my ball) errs exactly when the
//     two selected nodes are > 2t apart: error rate 1 as soon as the ring
//     diameter exceeds 2t, for every t.
#include "bench_common.h"

#include "decide/evaluate.h"
#include "decide/experiment_plans.h"
#include "lang/amos.h"
#include "scenario/registry.h"

namespace {

using namespace lnc;

void print_tables() {
  bench::print_header(
      "E9: amos separates LD from BPLD", "paper section 2.3.1",
      "Every deterministic 0-round decider errs on amos; the radius-t\n"
      "counting decider errs whenever two selected nodes are > 2t apart;\n"
      "the golden-ratio randomized decider holds its ~0.618 guarantee at\n"
      "every diameter with t' = 0.");

  // Part 1: all 16 zero-round deterministic deciders. A 0-round verdict
  // can depend on (output, degree-is-zero); on rings degree is constant,
  // so the verdict is v: {unselected, selected} -> {accept, reject}: 4
  // deciders; we list all and their failure certificate.
  util::Table exhaustive({"accept(unsel)", "accept(sel)",
                          "errs on", "certificate"});
  for (int mask = 0; mask < 4; ++mask) {
    const bool acc_unsel = (mask & 1) != 0;
    const bool acc_sel = (mask & 2) != 0;
    std::string errs;
    std::string cert;
    // yes instance A: nobody selected; yes instance B: one selected;
    // no instance C: two selected.
    if (!acc_unsel) {
      errs = "yes (0 selected)";
      cert = "some node rejects a member";
    } else if (!acc_sel) {
      errs = "yes (1 selected)";
      cert = "the selected node rejects a member";
    } else {
      errs = "no (2 selected)";
      cert = "all nodes accept a non-member";
    }
    exhaustive.new_row()
        .add_cell(acc_unsel ? "true" : "false")
        .add_cell(acc_sel ? "true" : "false")
        .add_cell(errs)
        .add_cell(cert);
  }
  bench::print_table(exhaustive);

  // Part 2: the radius-t counting decider vs diameter.
  util::Table sweep({"ring n", "diameter", "t", "det errs (2 sel antipodal)",
                     "rand guarantee (meas)"});
  const auto randomized = scenario::make_decider("amos", nullptr);
  const rand::PhiloxCoins no_coins(0, rand::Stream::kDecision);
  local::BatchRunner runner;
  for (graph::NodeId ring_n : {6u, 10u, 18u, 34u, 66u}) {
    const local::Instance ring = scenario::build_instance("ring", ring_n);
    const int diameter = static_cast<int>(ring_n) / 2;
    local::Labeling two_selected(ring_n, 0);
    two_selected[0] = lang::Amos::kSelected;
    two_selected[ring_n / 2] = lang::Amos::kSelected;
    for (int t : {1, 2, 4}) {
      const auto det = scenario::make_decider(
          "local-count", nullptr, {{"radius", static_cast<double>(t)}});
      const bool errs =
          decide::evaluate(ring, two_selected, *det, no_coins)
              .accepted;  // non-member!
      // Randomized side: Pr[reject | 2 selected] must stay >= 1 - p^2.
      const stats::Estimate reject = runner.run(decide::acceptance_plan(
          "amos-reject", ring, two_selected, *randomized, 3000,
          ring_n * 10 + static_cast<std::uint64_t>(t), {},
          /*success_on_accept=*/false));
      sweep.new_row()
          .add_cell(std::uint64_t{ring_n})
          .add_cell(diameter)
          .add_cell(t)
          .add_cell(errs ? "ERRS (accepts)" : "correct")
          .add_cell(reject.p_hat, 4);
    }
  }
  bench::print_table(sweep);
  std::cout << "Reading: each fixed t is correct only while diameter <= 2t;\n"
               "the randomized column stays ~0.618+ everywhere.\n\n";
}

void BM_LocalCountDecider(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = scenario::build_instance("ring", n);
  local::Labeling y(n, 0);
  y[0] = y[n / 2] = lang::Amos::kSelected;
  const auto decider =
      scenario::make_decider("local-count", nullptr, {{"radius", 2}});
  const rand::PhiloxCoins no_coins(0, rand::Stream::kDecision);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        decide::evaluate(inst, y, *decider, no_coins).accepted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LocalCountDecider)->Arg(64)->Arg(512);

}  // namespace

LNC_BENCH_MAIN(print_tables)
