// Serving-tier latency: what the content-addressed result cache
// (src/serve) buys over recomputation.
//
// One table on the luby-mis-rounds value preset, per trial budget:
//   * cold   — plain run_sweep, no cache anywhere (the baseline);
//   * miss   — SweepService query against an empty store (compute +
//              key hashing + write-back);
//   * hit    — the identical repeat query (store lookup + verify only);
//   * top-up — a query at 2T against the cached T entry (computes
//              exactly the missing [T, 2T), merges, writes back).
// The hit column is the daemon's steady state; the top-up column is the
// incremental cost of raising a curve's precision after the fact.
// Microbenchmarks cover the two primitives every query pays: cache-key
// hashing (canonicalize + SHA-256) and a verified store lookup.
#include "bench_common.h"

#include <filesystem>

#include "scenario/presets.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "serve/cache_key.h"
#include "serve/result_store.h"
#include "serve/service.h"
#include "util/timer.h"

namespace {

using namespace lnc;

scenario::ScenarioSpec cache_spec(std::uint64_t trials) {
  const scenario::ScenarioSpec* preset =
      scenario::find_preset("luby-mis-rounds");
  scenario::ScenarioSpec spec = *preset;
  spec.n_grid = {64};
  spec.trials = trials;
  return spec;
}

/// A fresh store directory under the system temp root.
std::string fresh_store(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("lnc-bench-cache-" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

void print_tables() {
  bench::print_header(
      "Result cache: miss vs hit vs top-up",
      "serving tier (src/serve), ROADMAP \"result cache + sweep service\"",
      "A repeated query must cost a store lookup, not a recomputation,\n"
      "and raising the trial budget must cost only the MISSING trials —\n"
      "the top-up merges bit-identically into the cached accumulators\n"
      "(asserted by tests/serve_test.cpp; this table shows the payoff).");

  util::Table table({"trials", "cold (ms)", "miss (ms)", "hit (ms)",
                     "top-up to 2T (ms)", "top-up computed"});
  for (const std::uint64_t trials : {50u, 200u, 800u}) {
    const scenario::ScenarioSpec spec = cache_spec(trials);

    util::Timer timer;
    scenario::run_sweep(scenario::compile(spec));
    const double cold_ms = timer.elapsed_millis();

    serve::ServiceOptions options;
    options.threads = 1;
    serve::SweepService service(
        fresh_store(std::to_string(trials)), options);

    timer.reset();
    service.query(spec);
    const double miss_ms = timer.elapsed_millis();

    timer.reset();
    service.query(spec);
    const double hit_ms = timer.elapsed_millis();

    scenario::ScenarioSpec doubled = spec;
    doubled.trials = 2 * trials;
    timer.reset();
    const serve::QueryOutcome topped = service.query(doubled);
    const double topup_ms = timer.elapsed_millis();

    table.new_row()
        .add_cell(trials)
        .add_cell(cold_ms)
        .add_cell(miss_ms)
        .add_cell(hit_ms)
        .add_cell(topup_ms)
        .add_cell(topped.trials_computed);
  }
  bench::print_table(table);
}

void BM_CacheKey(benchmark::State& state) {
  const scenario::ScenarioSpec spec = cache_spec(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::cache_key(spec));
  }
}
BENCHMARK(BM_CacheKey);

void BM_Sha256(benchmark::State& state) {
  const std::string bytes(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::sha256_hex(bytes));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_StoreLookup(benchmark::State& state) {
  // A verified lookup of a realistic entry: read, parse, re-hash the
  // embedded spec, completeness check — the full hit fast path.
  const scenario::ScenarioSpec spec = cache_spec(100);
  serve::ResultStore store(fresh_store("lookup"));
  serve::CacheEntry entry;
  entry.key = serve::cache_key(spec);
  entry.spec = spec;
  entry.result = scenario::run_sweep(scenario::compile(spec));
  const std::string error = store.store(entry);
  if (!error.empty()) state.SkipWithError(error.c_str());
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.lookup(entry.key));
  }
}
BENCHMARK(BM_StoreLookup);

}  // namespace

LNC_BENCH_MAIN(print_tables)
