// E5 — order-invariant algorithms on consecutive-identity rings
// (Corollary 1's application, paper section 4).
//
// The argument: any order-invariant t-round ring algorithm sees the same
// identity rank pattern at every interior node of the consecutive ring, so
// it outputs the same color at >= n - (2t+1) + 1 nodes; a monochromatic
// stretch of that length contains ~n bad balls for proper 3-coloring —
// crossing ANY fixed fault budget f as n grows. For t = 1 the full family
// is 3^(3!) = 729 table algorithms: we sweep ALL of them.
#include "bench_common.h"

#include <algorithm>
#include <array>

#include "algo/order_invariant.h"
#include "core/boost_params.h"
#include "core/hard_instances.h"
#include "local/runner.h"
#include "scenario/registry.h"

namespace {

using namespace lnc;

struct SweepResult {
  std::size_t min_same_color = 0;   ///< min over algorithms of the largest
                                    ///< monochromatic class
  std::size_t min_bad_balls = 0;    ///< min over algorithms of |F(G)|
};

SweepResult sweep_all_t1_algorithms(graph::NodeId n) {
  const local::Instance inst = scenario::build_instance("hard-ring", n);
  const auto language = scenario::make_language("coloring", {{"colors", 3}});
  const lang::LclLanguage& lang3 = *scenario::lcl_core(*language);
  const auto tables = algo::enumerate_tables(3, 3, 0, 729);
  SweepResult result;
  result.min_same_color = n;
  result.min_bad_balls = n;
  for (const auto& table : tables) {
    const algo::RankPatternRingAlgorithm alg(1, table);
    const local::Labeling output = local::run_ball_algorithm(inst, alg);
    std::array<std::size_t, 3> counts{};
    for (local::Label c : output) ++counts[c];
    const std::size_t biggest =
        *std::max_element(counts.begin(), counts.end());
    result.min_same_color = std::min(result.min_same_color, biggest);
    result.min_bad_balls = std::min(
        result.min_bad_balls, lang3.count_bad_balls(inst, output));
  }
  return result;
}

void print_tables() {
  bench::print_header(
      "E5: all 729 order-invariant 1-round ring algorithms",
      "Corollary 1 application, paper section 4",
      "On the consecutive-identity ring, EVERY order-invariant t-round\n"
      "algorithm outputs one color at >= n-2t nodes (the paper counts\n"
      "n-(2t-1)); the bad-ball count therefore grows ~ n and crosses any\n"
      "fixed resilience budget f: no constant-round deterministic — and\n"
      "by Theorem 1 no Monte-Carlo — algorithm solves f-resilient ring\n"
      "3-coloring.");

  util::Table table({"n", "algorithms", "min same-color nodes",
                     "paper bound n-(2t-1)", "min bad balls",
                     "crosses f=10?"});
  for (graph::NodeId n : {16u, 32u, 64u, 128u, 256u}) {
    const SweepResult sweep = sweep_all_t1_algorithms(n);
    table.new_row()
        .add_cell(std::uint64_t{n})
        .add_cell(std::uint64_t{729})
        .add_cell(std::uint64_t{sweep.min_same_color})
        .add_cell(std::uint64_t{n - 1})
        .add_cell(std::uint64_t{sweep.min_bad_balls})
        .add_cell(sweep.min_bad_balls > 10 ? "yes" : "NO");
  }
  bench::print_table(table);

  // beta = 1/N context (Claim 2): the number of order-invariant
  // algorithms N for small t — the proof's failure floor is 1/N.
  util::Table counts({"t", "palette", "N = q^((2t+1)!)", "beta = 1/N"});
  for (int t : {0, 1}) {
    const std::uint64_t count =
        core::order_invariant_algorithm_count_ring(t, 3);
    counts.new_row()
        .add_cell(t)
        .add_cell(3)
        .add_cell(count)
        .add_cell(1.0 / static_cast<double>(count), 8);
  }
  bench::print_table(counts);
}

void BM_SweepAllTables(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_all_t1_algorithms(n));
  }
  state.SetItemsProcessed(state.iterations() * 729 * n);
}
BENCHMARK(BM_SweepAllTables)->Arg(32)->Arg(64);

}  // namespace

LNC_BENCH_MAIN(print_tables)
