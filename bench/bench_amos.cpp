// E1 — the amos zero-round randomized decider (paper, section 2.3.1).
//
// Reproduces: the decider that accepts at non-selected nodes and accepts
// with probability p at selected nodes has guarantee min(p, 1 - p^2),
// maximized at the golden ratio p* = (sqrt(5)-1)/2 ~ 0.618, where the
// yes-side and no-side error rates balance.
//
// Components resolve through the scenario registry (scenario/registry.h);
// only the p-sweep grid and the planted-selection samplers are local.
#include "bench_common.h"

#include <cmath>

#include "decide/experiment_plans.h"
#include "decide/guarantee.h"
#include "lang/amos.h"
#include "scenario/registry.h"
#include "stats/threadpool.h"
#include "util/math.h"

namespace {

using namespace lnc;

decide::ConfigurationSampler selected_sampler(graph::NodeId n, int count) {
  // The topology is fixed across trials: share the interned ring instance
  // and rebuild only the output labeling per sample.
  auto instance = scenario::interned_instance("ring", n);
  return [instance, n, count](std::uint64_t seed) {
    decide::SampledConfiguration sample;
    sample.shared_instance = instance;
    sample.output.assign(n, 0);
    // `count` selected nodes spread around the ring; placement varies with
    // the seed (the decider is placement-blind, this just avoids bias).
    for (int i = 0; i < count; ++i) {
      const auto pos = static_cast<graph::NodeId>(
          (seed + static_cast<std::uint64_t>(i) * n /
                      static_cast<std::uint64_t>(count)) %
          n);
      sample.output[pos] = lang::Amos::kSelected;
    }
    return sample;
  };
}

void print_tables() {
  bench::print_header(
      "E1: amos golden-ratio decider", "paper section 2.3.1",
      "Sweep p: measured Pr[all accept | 1 selected] ~ p, measured\n"
      "Pr[some reject | 2 selected] ~ 1 - p^2; the guarantee min of both\n"
      "peaks at p* = (sqrt(5)-1)/2 ~ 0.6180 with value ~ 0.6180.");

  const graph::NodeId n = 24;
  const stats::ThreadPool pool;
  util::Table table({"p", "accept|1sel (meas)", "p (theory)",
                     "reject|2sel (meas)", "1-p^2 (theory)",
                     "guarantee (meas)", "guarantee (theory)"});
  const double golden = util::golden_ratio_guarantee();
  for (double p : {0.30, 0.45, 0.55, 0.60, golden, 0.65, 0.70, 0.80, 0.95}) {
    const auto decider = scenario::make_decider("amos", nullptr, {{"p", p}});
    decide::GuaranteeOptions options;
    options.trials = 6000;
    options.base_seed = static_cast<std::uint64_t>(p * 1e6);
    options.pool = &pool;
    const decide::GuaranteeReport report = decide::measure_guarantee(
        *decider, selected_sampler(n, 1), selected_sampler(n, 2), options);
    const double measured_guarantee =
        std::min(report.accept_on_yes.p_hat, report.reject_on_no.p_hat);
    table.new_row()
        .add_cell(p, 4)
        .add_cell(report.accept_on_yes.p_hat, 4)
        .add_cell(p, 4)
        .add_cell(report.reject_on_no.p_hat, 4)
        .add_cell(1.0 - p * p, 4)
        .add_cell(measured_guarantee, 4)
        .add_cell(util::amos_guarantee(p), 4);
  }
  bench::print_table(table);

  // Second table: acceptance by number of selected nodes at the optimum —
  // the p^s geometric decay the proof of the example computes. The msgs /
  // words columns are the modeled communication volume of the zero-round
  // decider (local/telemetry.h) — constant in s, the point of a local
  // decision: volume scales with n, never with the planted pattern.
  util::Table decay({"selected s", "Pr[all accept] (meas)",
                     "p*^s (theory)", "msgs", "words"});
  const auto optimal = scenario::make_decider("amos", nullptr);
  const double p_star = util::golden_ratio_guarantee();
  local::BatchRunner runner(&pool);
  local::Telemetry decay_telemetry;
  for (int s : {0, 1, 2, 3, 5, 8}) {
    const auto sampler = selected_sampler(n, s);
    const stats::Estimate accept = runner.run(decide::guarantee_side_plan(
        "amos-decay", sampler, *optimal, /*want_accept=*/true, 6000,
        static_cast<std::uint64_t>(1000 + s)));
    const local::Telemetry& telemetry = runner.last_telemetry();
    decay_telemetry.merge(telemetry);
    decay.new_row()
        .add_cell(s)
        .add_cell(accept.p_hat, 4)
        .add_cell(std::pow(p_star, s), 4)
        .add_cell(telemetry.messages_sent)
        .add_cell(telemetry.words_sent);
  }
  bench::print_table(decay, &decay_telemetry);
}

void BM_AmosDecideRing(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = scenario::build_instance("ring", n);
  local::Labeling output(n, 0);
  output[0] = lang::Amos::kSelected;
  const auto decider = scenario::make_decider("amos", nullptr);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins coins(++seed, rand::Stream::kDecision);
    benchmark::DoNotOptimize(
        decide::evaluate(inst, output, *decider, coins).accepted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AmosDecideRing)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

LNC_BENCH_MAIN(print_tables)
