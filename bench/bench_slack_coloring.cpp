// E2 — epsilon-slack 3-coloring by the zero-round uniform coloring
// (paper, sections 1.1 and 5): randomization HELPS for slack relaxations.
//
// Reproduces:
//  * the per-node bad-ball rate of the uniform coloring on rings
//    concentrates at 5/9 (a node clashes with at least one of its two
//    neighbors with probability 1 - (2/3)^2);
//  * Pr[at most eps*n bad balls] exhibits a sharp threshold at eps = 5/9:
//    ~0 below, -> 1 above, with the transition narrowing as n grows —
//    "with constant probability, a fraction 1-eps of the nodes are
//    properly colored";
//  * the open-problem n^c budgets between resilient (c=0) and slack (c=1).
//
// Every component resolves through the scenario registry; the tables are
// the bench-specific part.
#include "bench_common.h"

#include "local/experiment.h"
#include "scenario/registry.h"
#include "stats/threadpool.h"

namespace {

using namespace lnc;

void print_tables() {
  bench::print_header(
      "E2: epsilon-slack coloring via zero-round random colors",
      "paper sections 1.1 and 5",
      "Mean bad-ball fraction ~ 5/9 ~ 0.5556 on rings; success probability\n"
      "Pr[bad <= eps*n] jumps from ~0 to ~1 across eps = 5/9, so for every\n"
      "eps above the threshold the trivial Monte-Carlo algorithm solves\n"
      "the eps-slack relaxation with probability -> 1 (randomization\n"
      "helps), while no fixed f budget survives growing n (E4/E6).");

  const auto language = scenario::make_language("coloring", {{"colors", 3}});
  const lang::LclLanguage& base = *scenario::lcl_core(*language);
  const auto construction =
      scenario::make_construction("rand-coloring", {{"colors", 3}});
  const local::RandomizedBallAlgorithm& coloring =
      *construction->ball_algorithm();
  const stats::ThreadPool pool;
  local::BatchRunner runner(&pool);

  // Table 1: bad-ball fraction statistics vs n.
  util::Table frac({"n", "mean bad frac", "stddev", "theory 5/9"});
  for (graph::NodeId n : {30u, 100u, 300u, 1000u}) {
    const local::Instance inst = scenario::build_instance("hard-ring", n);
    const stats::MeanEstimate mean =
        runner.run_mean(local::construction_value_plan(
            "bad-ball-fraction", inst, coloring,
            [&base, n](const local::Instance& instance,
                       const local::Labeling& y) {
              return static_cast<double>(base.count_bad_balls(instance, y)) /
                     static_cast<double>(n);
            },
            600, n));
    frac.new_row()
        .add_cell(std::uint64_t{n})
        .add_cell(mean.mean, 4)
        .add_cell(mean.stddev, 4)
        .add_cell(5.0 / 9.0, 4);
  }
  bench::print_table(frac);

  // Table 2: the success-probability threshold across eps, for two n.
  util::Table threshold(
      {"eps", "Pr[success] n=60", "Pr[success] n=600", "side of 5/9"});
  for (double eps : {0.35, 0.45, 0.50, 0.54, 0.57, 0.60, 0.70, 0.85}) {
    std::vector<double> prob;
    for (graph::NodeId n : {60u, 600u}) {
      const local::Instance inst = scenario::build_instance("hard-ring", n);
      const auto slack = scenario::make_language(
          "slack-coloring", {{"colors", 3}, {"eps", eps}});
      const stats::Estimate success = runner.run(local::construction_plan(
          "slack-success", inst, coloring,
          [&slack](const local::Instance& instance,
                   const local::Labeling& y) {
            return slack->contains(instance, y);
          },
          600, static_cast<std::uint64_t>(eps * 1e4) + n));
      prob.push_back(success.p_hat);
    }
    threshold.new_row()
        .add_cell(eps, 2)
        .add_cell(prob[0], 4)
        .add_cell(prob[1], 4)
        .add_cell(eps < 5.0 / 9.0 ? "below" : "above");
  }
  bench::print_table(threshold);

  // Table 3: the paper's OPEN PROBLEM (section 5) — intermediate
  // relaxations with budget n^c, c in (0, 1). For every c < 1 the budget
  // n^c is eventually dwarfed by the Theta(n) conflicts of the zero-round
  // algorithm, so its success probability collapses as n grows — the
  // randomized upper-bound side of the open regime, measured.
  std::cout << "Open problem (section 5): budget n^c between f-resilient\n"
               "(c=0) and slack (c=1):\n\n";
  util::Table poly({"c", "Pr[ok] n=30", "Pr[ok] n=120", "Pr[ok] n=480"});
  for (double c : {0.0, 0.4, 0.7, 0.9, 1.0}) {
    poly.new_row().add_cell(c, 1);
    for (graph::NodeId n : {30u, 120u, 480u}) {
      const local::Instance inst = scenario::build_instance("hard-ring", n);
      const auto relaxed = scenario::make_language(
          "poly-resilient-coloring", {{"colors", 3}, {"exponent", c}});
      const stats::Estimate ok = runner.run(local::construction_plan(
          "poly-resilient-ok", inst, coloring,
          [&relaxed](const local::Instance& instance,
                     const local::Labeling& y) {
            return relaxed->contains(instance, y);
          },
          400, static_cast<std::uint64_t>(c * 100) + n));
      poly.add_cell(ok.p_hat, 4);
    }
  }
  bench::print_table(poly);
}

void BM_RandomColoring(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = scenario::build_instance("hard-ring", n);
  const auto construction =
      scenario::make_construction("rand-coloring", {{"colors", 3}});
  const local::RandomizedBallAlgorithm& coloring =
      *construction->ball_algorithm();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins coins(++seed, rand::Stream::kConstruction);
    benchmark::DoNotOptimize(
        local::run_ball_algorithm(inst, coloring, coins));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandomColoring)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CountBadBalls(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const local::Instance inst = scenario::build_instance("hard-ring", n);
  const auto language = scenario::make_language("coloring", {{"colors", 3}});
  const lang::LclLanguage& base = *scenario::lcl_core(*language);
  const auto construction =
      scenario::make_construction("rand-coloring", {{"colors", 3}});
  const rand::PhiloxCoins coins(1, rand::Stream::kConstruction);
  const local::Labeling y = local::run_ball_algorithm(
      inst, *construction->ball_algorithm(), coins);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.count_bad_balls(inst, y));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CountBadBalls)->Arg(100)->Arg(1000);

}  // namespace

LNC_BENCH_MAIN(print_tables)
