// E11 — distributed Lovász Local Lemma (paper, sections 1.1 and 4).
//
// The paper uses the constructive LLL twice: as a task whose relaxed
// version randomization solves (slack), and as the second f-resilient
// impossibility example (Corollary 1, via the reduction of LLL to
// coloring). Measured here:
//   * Moser-Tardos resampling phases across graph families (all resolved
//     from the topology registry), inside and outside the symmetric LLL
//     condition;
//   * the f-resilient face: order-invariant ring algorithms produce
//     assignments whose LLL violation count grows with n.
#include "bench_common.h"

#include <algorithm>

#include "algo/moser_tardos.h"
#include "algo/order_invariant.h"
#include "lang/lll.h"
#include "local/batch_runner.h"
#include "scenario/registry.h"

namespace {

using namespace lnc;

void print_tables() {
  bench::print_header(
      "E11: Moser-Tardos for the LLL system; f-resilient LLL on rings",
      "paper sections 1.1 and 4",
      "Bad event E_v: all of N[v] agree. Under the symmetric condition\n"
      "(e*p*(d+1) <= 1) resampling converges in a handful of phases;\n"
      "outside it, it still converges on small instances but slower. On\n"
      "consecutive rings, order-invariant algorithms violate ~n events.");

  const auto language = scenario::make_language("lll-avoidance");
  const lang::LclLanguage& lll = *scenario::lcl_core(*language);
  util::Table table({"graph", "n", "LLL condition", "phases (mean)",
                     "resamplings (mean)", "success"});
  struct Family {
    std::string name;
    local::Instance inst;
  };
  std::vector<Family> families;
  families.push_back(
      {"hypercube d=8", scenario::build_instance("hypercube", 256, {}, 1)});
  families.push_back(
      {"hypercube d=9", scenario::build_instance("hypercube", 512, {}, 2)});
  families.push_back(
      {"random 6-regular",
       scenario::build_instance("random-regular", 300, {{"degree", 6}}, 3)});
  families.push_back({"ring n=64", scenario::build_instance("hard-ring", 64)});
  families.push_back(
      {"grid 16x16", scenario::build_instance("grid", 256, {}, 4)});
  local::BatchRunner runner;
  for (const Family& family : families) {
    const std::uint64_t trials = 10;
    enum { kPhases, kResamplings, kSuccesses, kSlots };
    const auto counts = runner.run_counts(local::custom_count_plan(
        "moser-tardos", trials, 11, kSlots,
        [&](const local::TrialEnv& env, std::span<std::uint64_t> slots) {
          const rand::PhiloxCoins coins = env.construction_coins();
          const algo::MoserTardosResult result =
              algo::run_moser_tardos(family.inst, coins, 100000);
          slots[kPhases] += static_cast<std::uint64_t>(result.phases);
          slots[kResamplings] += result.total_resamplings;
          slots[kSuccesses] +=
              (result.success && lll.contains(family.inst, result.assignment))
                  ? 1
                  : 0;
        }));
    const double phase_sum = static_cast<double>(counts[kPhases]);
    const double resample_sum = static_cast<double>(counts[kResamplings]);
    const bool all_success = counts[kSuccesses] == trials;
    table.new_row()
        .add_cell(family.name)
        .add_cell(std::uint64_t{family.inst.node_count()})
        .add_cell(lang::LllAvoidance::lll_condition_holds(family.inst.g)
                      ? "holds"
                      : "fails")
        .add_cell(phase_sum / trials, 1)
        .add_cell(resample_sum / trials, 1)
        .add_cell(all_success ? "10/10" : "NOT ALL");
  }
  bench::print_table(table);

  // f-resilient LLL impossibility data: sweep all 2^(3!) = 64 binary
  // 1-round order-invariant ring algorithms; min violated events vs n.
  util::Table resilient({"n", "algorithms", "min violated events",
                         "crosses f=10?"});
  for (graph::NodeId n : {16u, 64u, 256u}) {
    const local::Instance inst = scenario::build_instance("hard-ring", n);
    const auto tables = algo::enumerate_tables(3, 2, 0, 64);
    std::size_t min_violations = n;
    for (const auto& t : tables) {
      const algo::RankPatternRingAlgorithm alg(1, t);
      const local::Labeling bits = local::run_ball_algorithm(inst, alg);
      min_violations =
          std::min(min_violations, lll.count_bad_balls(inst, bits));
    }
    resilient.new_row()
        .add_cell(std::uint64_t{n})
        .add_cell(std::uint64_t{64})
        .add_cell(std::uint64_t{min_violations})
        .add_cell(min_violations > 10 ? "yes" : "NO");
  }
  bench::print_table(resilient);
}

void BM_MoserTardos(benchmark::State& state) {
  const auto d = static_cast<int>(state.range(0));
  const auto n = static_cast<graph::NodeId>(1u << d);
  const local::Instance inst =
      scenario::build_instance("hypercube", n, {}, 5);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const rand::PhiloxCoins coins(++seed, rand::Stream::kConstruction);
    benchmark::DoNotOptimize(algo::run_moser_tardos(inst, coins));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MoserTardos)->Arg(6)->Arg(8);

}  // namespace

LNC_BENCH_MAIN(print_tables)
