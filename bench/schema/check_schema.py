#!/usr/bin/env python3
"""CI bench-artifact schema gate.

Usage: check_schema.py GOLDEN_LIST BENCH_JSON_DIR

Diffs the TABLE_*.json files a bench run produced against the checked-in
golden list (bench/schema/TABLES.txt) so silently dropped — or silently
added/renamed — tables fail the build instead of quietly vanishing from
the uploaded trajectory artifact. Each present table must also parse as
JSON with the expected top-level shape: "headers" (non-empty) and "rows"
(row width == header width); an optional "telemetry" object must carry
the counter keys written by scenario::telemetry_to_json, and an optional
"optimization" object the backend/tuning keys written by
scenario::optimization_to_json.

When a bench binary legitimately gains or loses a table, regenerate the
golden list:

    LNC_BENCH_JSON_DIR=/tmp/bj ./build/bench_* --benchmark_filter=NONE
    ls /tmp/bj | grep '^TABLE_' | sort > bench/schema/TABLES.txt
"""
import json
import os
import sys

TELEMETRY_KEYS = {"messages", "words", "rounds", "ball_expansions",
                  "arena_peak_bytes", "wall_seconds"}
OPTIMIZATION_KEYS = {"backend", "batch_trials", "use_silent_skip",
                     "use_done_mask", "reuse_round_buffers"}
BACKENDS = {"auto", "naive", "batched", "vectorized"}


def check_table(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data.get("headers"), list) or not data["headers"]:
        return "missing or empty 'headers'"
    if not isinstance(data.get("rows"), list):
        return "missing 'rows'"
    width = len(data["headers"])
    for i, row in enumerate(data["rows"]):
        if len(row) != width:
            return f"row {i} has {len(row)} cells, headers have {width}"
    if "telemetry" in data:
        missing = TELEMETRY_KEYS - set(data["telemetry"])
        if missing:
            return f"telemetry object missing {sorted(missing)}"
    if "optimization" in data:
        missing = OPTIMIZATION_KEYS - set(data["optimization"])
        if missing:
            return f"optimization object missing {sorted(missing)}"
        backend = data["optimization"].get("backend")
        if backend not in BACKENDS:
            return f"optimization backend {backend!r} not in {sorted(BACKENDS)}"
    return None


def main(argv):
    if len(argv) != 3:
        raise SystemExit(__doc__)
    golden_list, bench_dir = argv[1], argv[2]
    with open(golden_list) as f:
        golden = {line.strip() for line in f if line.strip()}
    actual = {name for name in os.listdir(bench_dir)
              if name.startswith("TABLE_") and name.endswith(".json")}

    problems = []
    for name in sorted(golden - actual):
        problems.append(f"dropped table: {name} (in the golden list but "
                        "not produced by this run)")
    for name in sorted(actual - golden):
        problems.append(f"unexpected table: {name} (produced but not in "
                        f"{golden_list} — update the golden list)")
    for name in sorted(golden & actual):
        error = check_table(os.path.join(bench_dir, name))
        if error:
            problems.append(f"malformed table {name}: {error}")

    if problems:
        print("bench JSON schema gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"bench JSON schema gate OK: {len(golden)} tables match "
          f"{golden_list}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
